#include "src/report/report_spec.h"

#include "src/io/spec_reader.h"

namespace varbench::report {

namespace {

constexpr std::string_view kReportSpecSchema = "varbench.report_spec.v1";

constexpr std::string_view kKnownEstimators[] = {
    "mean", "std", "min", "max", "median", "ci", "normality"};

/// Thin shims over the shared strict reader (src/io/spec_reader.h) binding
/// this file's error domain.
constexpr std::string_view kDomain = "report spec";

using io::string_array;

std::string read_string(const io::Json& v, std::string_view key) {
  return io::read_string(v, kDomain, key);
}

double read_double(const io::Json& v, std::string_view key) {
  return io::read_double(v, kDomain, key);
}

std::size_t read_size(const io::Json& v, std::string_view key) {
  return io::read_size(v, kDomain, key);
}

std::vector<std::string> read_string_array(const io::Json& v,
                                           std::string_view key) {
  return io::read_string_array(v, kDomain, key);
}

void validate(const ReportSpec& spec) {
  if (spec.estimators.empty()) {
    throw io::JsonError("report spec: 'estimators' must not be empty");
  }
  for (const auto& name : spec.estimators) {
    bool known = false;
    for (const std::string_view k : kKnownEstimators) known |= name == k;
    if (!known) {
      std::string list;
      for (const std::string_view k : kKnownEstimators) {
        if (!list.empty()) list += ", ";
        list += "'" + std::string{k} + "'";
      }
      throw io::JsonError("report spec: unknown estimator '" + name +
                          "' (known: " + list + ")");
    }
  }
  if (spec.ci_method != "bca" && spec.ci_method != "percentile") {
    throw io::JsonError("report spec: 'ci_method' must be 'bca' or "
                        "'percentile', got '" + spec.ci_method + "'");
  }
  if (!(spec.confidence > 0.0) || !(spec.confidence < 1.0)) {
    throw io::JsonError("report spec: 'confidence' must be in (0, 1), got " +
                        std::to_string(spec.confidence));
  }
  if (spec.resamples == 0) {
    throw io::JsonError("report spec: 'resamples' must be >= 1");
  }
  if (spec.permutations == 0) {
    throw io::JsonError("report spec: 'permutations' must be >= 1");
  }
  if (!(spec.gamma > 0.5) || !(spec.gamma < 1.0)) {
    throw io::JsonError("report spec: 'gamma' must be in (0.5, 1), got " +
                        std::to_string(spec.gamma));
  }
  if (spec.format != "text" && spec.format != "markdown" &&
      spec.format != "csv" && spec.format != "json") {
    throw io::JsonError("report spec: 'format' must be 'text', 'markdown', "
                        "'csv', or 'json', got '" + spec.format + "'");
  }
}

}  // namespace

io::Json ReportSpec::to_json() const {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kReportSpecSchema});
  doc.set("columns", string_array(columns));
  doc.set("group_by", io::Json{group_by});
  doc.set("estimators", string_array(estimators));
  doc.set("ci_method", io::Json{ci_method});
  doc.set("confidence", io::Json{confidence});
  doc.set("resamples", io::Json{resamples});
  doc.set("permutations", io::Json{permutations});
  doc.set("gamma", io::Json{gamma});
  doc.set("seed", io::Json{seed});
  doc.set("format", io::Json{format});
  return doc;
}

std::string ReportSpec::to_json_text() const { return to_json().dump(2) + "\n"; }

ReportSpec ReportSpec::from_json(const io::Json& doc) {
  if (!doc.is_object()) {
    throw io::JsonError("report spec: document must be a JSON object, got " +
                        std::string{io::to_string(doc.type())});
  }
  io::ObjectReader r{doc, kDomain, "the report spec"};
  if (const auto* schema = r.find("schema")) {
    const std::string s = read_string(*schema, "schema");
    if (s != kReportSpecSchema) {
      throw io::JsonError("report spec: unsupported schema '" + s +
                          "' (this build reads '" +
                          std::string{kReportSpecSchema} + "')");
    }
  }
  ReportSpec spec;
  if (const auto* v = r.find("columns")) {
    spec.columns = read_string_array(*v, "columns");
  }
  if (const auto* v = r.find("group_by")) {
    spec.group_by = read_string(*v, "group_by");
  }
  if (const auto* v = r.find("estimators")) {
    spec.estimators = read_string_array(*v, "estimators");
  }
  if (const auto* v = r.find("ci_method")) {
    spec.ci_method = read_string(*v, "ci_method");
  }
  if (const auto* v = r.find("confidence")) {
    spec.confidence = read_double(*v, "confidence");
  }
  if (const auto* v = r.find("resamples")) {
    spec.resamples = read_size(*v, "resamples");
  }
  if (const auto* v = r.find("permutations")) {
    spec.permutations = read_size(*v, "permutations");
  }
  if (const auto* v = r.find("gamma")) spec.gamma = read_double(*v, "gamma");
  if (const auto* v = r.find("seed")) spec.seed = read_size(*v, "seed");
  if (const auto* v = r.find("format")) {
    spec.format = read_string(*v, "format");
    if (spec.format == "md") spec.format = "markdown";  // accepted alias
  }
  r.reject_unknown_keys();
  validate(spec);
  return spec;
}

ReportSpec ReportSpec::from_json_text(std::string_view text) {
  return from_json(io::Json::parse(text));
}

}  // namespace varbench::report

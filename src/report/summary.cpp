#include "src/report/summary.h"

#include <algorithm>
#include <stdexcept>

#include "src/io/columnar/vbt.h"
#include "src/rngx/rng.h"
#include "src/stats/descriptive.h"
#include "src/stats/prob_outperform.h"
#include "src/stats/tests.h"

namespace varbench::report {

namespace {

/// Index columns by repo convention: enumeration order, not measurements.
/// The figure kinds add per-unit enumerations of their own (realization,
/// run, iter, seed of figF2, year of fig03) — axes to group_by over, not
/// values to summarize by default.
constexpr std::string_view kIndexColumns[] = {"seq", "rep",  "sim", "realization",
                                              "run", "iter", "seed", "year"};

bool is_index_column(const std::string& name) {
  for (const std::string_view c : kIndexColumns) {
    if (name == c) return true;
  }
  return false;
}

bool has_estimator(const ReportSpec& spec, std::string_view name) {
  return std::find(spec.estimators.begin(), spec.estimators.end(), name) !=
         spec.estimators.end();
}

/// A column is numeric when every cell is a number or null and at least one
/// is a number (bench tables use null for not-applicable cells).
bool column_is_numeric(const study::ResultTable& table, std::size_t ci) {
  // Columnar-backed tables answer from the column type directory; only
  // kMixed columns (nulls/bools/mixed kinds) need the per-cell scan.
  if (table.backing != nullptr &&
      table.backing->num_rows() == table.rows.size()) {
    using io::columnar::ColumnType;
    switch (table.backing->column_type(ci)) {
      case ColumnType::kF64:
      case ColumnType::kI64:
      case ColumnType::kU64:
        return !table.rows.empty();
      case ColumnType::kStringDict:
        return false;
      case ColumnType::kMixed:
        break;
    }
  }
  bool any_number = false;
  for (const study::Row& row : table.rows) {
    if (row[ci].is_number()) {
      any_number = true;
    } else if (!row[ci].is_null()) {
      return false;
    }
  }
  return any_number;
}

/// Numeric values of one column for the given rows, nulls skipped. Throws
/// when a cell is neither number nor null — a selected column must be data.
std::vector<double> numeric_values(const study::ResultTable& table,
                                   std::size_t ci,
                                   const std::vector<std::size_t>& rows,
                                   std::size_t* missing) {
  std::vector<double> out;
  // Contiguous f64 columns of a columnar-backed table gather straight off
  // the mapping — no io::Json cells, and no nulls by construction.
  if (const auto span = table.column_span(table.columns[ci])) {
    out.reserve(rows.size());
    for (const std::size_t ri : rows) out.push_back((*span)[ri]);
    return out;
  }
  out.reserve(rows.size());
  for (const std::size_t ri : rows) {
    const study::Cell& cell = table.rows[ri][ci];
    if (cell.is_null()) {
      ++*missing;
      continue;
    }
    if (!cell.is_number()) {
      throw io::JsonError("report: column '" + table.columns[ci] +
                          "' is not numeric (row " + std::to_string(ri) +
                          " holds " + cell.dump() + ")");
    }
    out.push_back(cell.as_double());
  }
  return out;
}

/// Group key of a cell: the string itself for strings, the canonical JSON
/// rendering otherwise (numbers, bools) — deterministic either way.
std::string group_key(const study::Cell& cell) {
  return cell.is_string() ? cell.as_string() : cell.dump();
}

struct RowGroups {
  std::vector<std::string> keys;                  // first-appearance order
  std::vector<std::vector<std::size_t>> members;  // row indices per key
};

RowGroups group_rows(const study::ResultTable& table,
                     const std::string& group_by) {
  RowGroups g;
  if (group_by.empty()) {
    g.keys.push_back("");
    g.members.emplace_back(table.rows.size());
    for (std::size_t i = 0; i < table.rows.size(); ++i) g.members[0][i] = i;
    return g;
  }
  const std::size_t ci = table.column_index(group_by);
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const std::string key = group_key(table.rows[i][ci]);
    const auto it = std::find(g.keys.begin(), g.keys.end(), key);
    if (it == g.keys.end()) {
      g.keys.push_back(key);
      g.members.emplace_back();
      g.members.back().push_back(i);
    } else {
      g.members[static_cast<std::size_t>(it - g.keys.begin())].push_back(i);
    }
  }
  return g;
}

void require_complete(const study::ResultTable& table) {
  if (!table.is_complete()) {
    throw std::invalid_argument(
        "report: artifact holds shard " + table.shard.label() + " of '" +
        table.name + "' — merge all " + std::to_string(table.shard.count) +
        " shards (varbench merge) before reporting");
  }
}

std::uint64_t report_seed(const study::ResultTable& table,
                          const ReportSpec& spec) {
  return spec.seed != 0 ? spec.seed
                        : rngx::derive_seed(table.seed, "report");
}

/// Every summary owns an RNG stream derived from (master, kind, group,
/// column), so results are independent of which other columns/groups the
/// spec selects and of the order they are computed in.
rngx::Rng stream_for(std::uint64_t master, std::string_view kind,
                     std::string_view group, std::string_view column) {
  std::string tag{kind};
  tag += '|';
  tag += group;
  tag += '|';
  tag += column;
  return rngx::Rng{rngx::derive_seed(master, tag)};
}

ColumnSummary summarize_values(const exec::ExecContext& ctx,
                               const std::vector<double>& values,
                               std::string group, std::string column,
                               std::size_t missing, const ReportSpec& spec,
                               std::uint64_t master) {
  ColumnSummary s;
  s.group = std::move(group);
  s.column = std::move(column);
  s.n = values.size();
  s.missing = missing;
  if (values.empty()) return s;
  const stats::Moments m = stats::moments(values);
  s.mean = m.mean;
  s.stddev = m.stddev;
  s.min = m.min;
  s.max = m.max;
  s.median = stats::median(values);
  if (has_estimator(spec, "ci") && values.size() >= 3) {
    rngx::Rng rng = stream_for(master, "ci", s.group, s.column);
    const double alpha = 1.0 - spec.confidence;
    // Fused mean kernels (src/stats/resample_kernels.h): bit-identical to
    // the historical std::function-of-mean path — golden renders pin this.
    s.ci_mean =
        spec.ci_method == "bca"
            ? stats::bca_bootstrap_ci(ctx, values, stats::ResampleStat::kMean,
                                      rng, spec.resamples, alpha)
            : stats::percentile_bootstrap_ci(ctx, values,
                                             stats::ResampleStat::kMean, rng,
                                             spec.resamples, alpha);
  }
  if (has_estimator(spec, "normality") && values.size() >= 3 &&
      values.size() <= 5000) {
    try {
      s.normality = stats::shapiro_wilk(values);
    } catch (const std::invalid_argument&) {
      // constant sample: the test is undefined, the flag stays absent
    }
  }
  return s;
}

ComparisonSummary compare_values(const exec::ExecContext& ctx,
                                 const std::string& column,
                                 const std::string& label_a,
                                 const std::vector<double>& a,
                                 const std::string& label_b,
                                 const std::vector<double>& b,
                                 const ReportSpec& spec,
                                 std::uint64_t master) {
  ComparisonSummary c;
  c.column = column;
  c.label_a = label_a;
  c.label_b = label_b;
  c.n_a = a.size();
  c.n_b = b.size();
  if (a.empty() || b.empty()) return c;
  c.mean_a = stats::mean(a);
  c.mean_b = stats::mean(b);
  c.paired = a.size() == b.size();
  const std::string pair_tag = label_a + ">" + label_b;
  if (c.paired) {
    rngx::Rng rng = stream_for(master, "pab", pair_tag, column);
    const auto r = stats::test_probability_of_outperforming(
        ctx, a, b, rng, spec.gamma, spec.resamples, 1.0 - spec.confidence);
    c.p_a_greater_b = r.p_a_greater_b;
    c.ci = r.ci;
    c.conclusion = std::string{stats::to_string(r.conclusion)};
    rngx::Rng perm_rng = stream_for(master, "perm", pair_tag, column);
    c.permutation_p =
        stats::paired_permutation_test(ctx, a, b, perm_rng, spec.permutations)
            .p_value;
  } else {
    c.p_a_greater_b = stats::mann_whitney_u(a, b).prob_a_greater;
    rngx::Rng perm_rng = stream_for(master, "perm", pair_tag, column);
    c.permutation_p =
        stats::permutation_test_mean_diff(ctx, a, b, perm_rng,
                                          spec.permutations)
            .p_value;
  }
  return c;
}

}  // namespace

std::vector<std::string> resolve_columns(const study::ResultTable& table,
                                         const ReportSpec& spec) {
  std::vector<std::string> out;
  if (!spec.columns.empty()) {
    for (const auto& name : spec.columns) {
      const std::size_t ci = table.column_index(name);  // throws when absent
      if (!column_is_numeric(table, ci)) {
        throw io::JsonError("report: selected column '" + name +
                            "' is not numeric");
      }
      out.push_back(name);
    }
    return out;
  }
  for (std::size_t ci = 0; ci < table.columns.size(); ++ci) {
    const std::string& name = table.columns[ci];
    if (is_index_column(name) || name == spec.group_by) continue;
    if (column_is_numeric(table, ci)) out.push_back(name);
  }
  if (out.empty()) {
    throw io::JsonError(
        "report: no numeric data columns in '" + table.name +
        "' — select columns explicitly with the spec's 'columns' list");
  }
  return out;
}

Report summarize(const exec::ExecContext& ctx, const LoadedArtifact& artifact,
                 const ReportSpec& spec) {
  const study::ResultTable& table = artifact.table;
  require_complete(table);
  const auto columns = resolve_columns(table, spec);
  const auto groups = group_rows(table, spec.group_by);
  const std::uint64_t master = report_seed(table, spec);

  Report report;
  report.title = table.name;
  report.seed = table.seed;
  report.rows = table.rows.size();
  report.spec = spec;

  // Values per (group, column), reused by the comparison pass.
  std::vector<std::vector<std::vector<double>>> values(groups.keys.size());
  for (std::size_t gi = 0; gi < groups.keys.size(); ++gi) {
    values[gi].resize(columns.size());
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
      std::size_t missing = 0;
      values[gi][ci] = numeric_values(table, table.column_index(columns[ci]),
                                      groups.members[gi], &missing);
      report.columns.push_back(summarize_values(
          ctx, values[gi][ci], groups.keys[gi], columns[ci], missing, spec,
          master));
    }
  }
  if (groups.keys.size() == 2) {
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
      report.comparisons.push_back(compare_values(
          ctx, columns[ci], groups.keys[0], values[0][ci], groups.keys[1],
          values[1][ci], spec, master));
    }
  }
  return report;
}

Report summarize_compare(const exec::ExecContext& ctx, const LoadedArtifact& a,
                         const LoadedArtifact& b, const ReportSpec& spec) {
  require_complete(a.table);
  require_complete(b.table);
  ReportSpec flat = spec;
  flat.group_by.clear();  // the two artifacts are the groups
  const auto columns_a = resolve_columns(a.table, flat);
  const std::uint64_t master = report_seed(a.table, flat);

  Report report;
  report.title = a.table.name + " vs " + b.table.name;
  report.seed = a.table.seed;
  report.rows = a.table.rows.size() + b.table.rows.size();
  report.spec = flat;

  std::vector<std::size_t> rows_a(a.table.rows.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i) rows_a[i] = i;
  std::vector<std::size_t> rows_b(b.table.rows.size());
  for (std::size_t i = 0; i < rows_b.size(); ++i) rows_b[i] = i;

  for (const auto& column : columns_a) {
    std::size_t missing_a = 0;
    const auto va = numeric_values(a.table, a.table.column_index(column),
                                   rows_a, &missing_a);
    report.columns.push_back(summarize_values(ctx, va, "A", column, missing_a,
                                              flat, master));
    if (!b.table.has_column(column)) continue;
    const std::size_t bi = b.table.column_index(column);
    if (!column_is_numeric(b.table, bi)) continue;
    std::size_t missing_b = 0;
    const auto vb = numeric_values(b.table, bi, rows_b, &missing_b);
    report.columns.push_back(summarize_values(ctx, vb, "B", column, missing_b,
                                              flat, master));
    report.comparisons.push_back(
        compare_values(ctx, column, "A", va, "B", vb, flat, master));
  }
  return report;
}

}  // namespace varbench::report

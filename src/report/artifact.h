// Artifact loading for the analysis subsystem: turn anything on disk — a
// single ResultTable JSON (shard or complete), a directory of shard
// artifacts, or a whole campaign state directory — into in-memory tables
// ready for summarization, with strict schema validation and errors that
// name the offending file. No producing StudySpec is required: everything
// downstream derives from the raw rows (docs/reporting.md).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/study/result_table.h"

namespace varbench::report {

struct LoadedArtifact {
  std::string source;        // the path(s) the table came from
  study::ResultTable table;
};

/// Per-task wall-time provenance totals read from a campaign manifest
/// (campaign.json). Wall time is provenance, never identity — it is
/// surfaced only when reporting on a campaign directory, so reports on
/// bare artifacts stay byte-comparable across executions.
struct CampaignProvenance {
  std::size_t tasks = 0;
  std::size_t tasks_with_wall_time = 0;
  double total_wall_ms = 0.0;
  /// One entry per study: ("s<k> <kind>:<case_study>", summed ms).
  std::vector<std::pair<std::string, double>> study_wall_ms;
};

/// Load one artifact file. Throws io::JsonError naming the file on
/// unreadable input, malformed JSON, unknown schema, or shape violations.
/// A shard artifact loads fine (`table.is_complete()` is false);
/// summarization is what requires completeness.
[[nodiscard]] LoadedArtifact load_artifact(const std::string& path);

struct DirArtifacts {
  /// One complete table per study found, in deterministic (path) order.
  /// Shard sets are merged on the fly; merging validates the partition.
  std::vector<LoadedArtifact> studies;
  /// Present when the directory holds a campaign.json manifest.
  std::optional<CampaignProvenance> provenance;
};

/// Load every study from a directory. A campaign state dir reads its
/// merged/ outputs (falling back to merging artifacts/); a plain directory
/// of shard or complete artifacts groups the *.json files by study
/// identity (name, seed, columns, spec) and merges each group. Throws
/// io::JsonError on an empty directory, an invalid file, or an incomplete
/// shard set.
[[nodiscard]] DirArtifacts load_artifact_dir(const std::string& dir);

}  // namespace varbench::report

// varbench — umbrella header.
//
// A variance-aware machine-learning benchmarking library reproducing
// "Accounting for Variance in Machine Learning Benchmarks"
// (Bouthillier et al., MLSys 2021).
//
// Layering (each namespace is its own static library):
//   varbench::math        dense matrices, Cholesky/linear solvers
//   varbench::rngx        reproducible RNG + named variation-seed streams (ξ)
//   varbench::exec        deterministic parallel execution (thread pool,
//                         parallel_for, per-index-stream parallel_replicate)
//   varbench::stats       distributions, tests, bootstrap, P(A>B), sample size
//   varbench::ml          datasets, MLPs, optimizers, metrics, training (Opt)
//   varbench::hpo         search spaces, grid/random/Bayesian HPO (HOpt)
//   varbench::core        pipelines, splitters, IdealEst/FixHOptEst, Fig.1 study
//   varbench::compare     comparison criteria, §4.2 simulators, error rates
//   varbench::casestudies the five case-study analogues + paper calibrations
//   varbench::io          dependency-free JSON for specs and artifacts
//   varbench::study       experiments-as-data: StudySpec, ResultTable,
//                         run_study dispatch, shard/merge
//   varbench::report      consumer-side analysis: every statistic derivable
//                         from any ResultTable, rendered text/md/csv/json
#pragma once

#include "src/casestudies/calibration.h"      // IWYU pragma: export
#include "src/casestudies/mlp_pipeline.h"     // IWYU pragma: export
#include "src/casestudies/registry.h"         // IWYU pragma: export
#include "src/compare/criteria.h"             // IWYU pragma: export
#include "src/compare/error_rates.h"          // IWYU pragma: export
#include "src/compare/fixed_models.h"          // IWYU pragma: export
#include "src/compare/multiple.h"             // IWYU pragma: export
#include "src/compare/simulation.h"           // IWYU pragma: export
#include "src/core/estimators.h"              // IWYU pragma: export
#include "src/core/pipeline.h"                // IWYU pragma: export
#include "src/core/splitter.h"                // IWYU pragma: export
#include "src/core/variance_study.h"          // IWYU pragma: export
#include "src/exec/exec.h"                    // IWYU pragma: export
#include "src/hpo/bayesopt.h"                 // IWYU pragma: export
#include "src/io/json.h"                      // IWYU pragma: export
#include "src/hpo/gp.h"                       // IWYU pragma: export
#include "src/hpo/hpo.h"                      // IWYU pragma: export
#include "src/hpo/space.h"                    // IWYU pragma: export
#include "src/math/linalg.h"                  // IWYU pragma: export
#include "src/math/matrix.h"                  // IWYU pragma: export
#include "src/ml/augment.h"                   // IWYU pragma: export
#include "src/ml/dataset.h"                   // IWYU pragma: export
#include "src/ml/init.h"                      // IWYU pragma: export
#include "src/ml/metrics.h"                   // IWYU pragma: export
#include "src/ml/mlp.h"                       // IWYU pragma: export
#include "src/ml/optimizer.h"                 // IWYU pragma: export
#include "src/ml/repro_audit.h"               // IWYU pragma: export
#include "src/ml/synthetic.h"                 // IWYU pragma: export
#include "src/ml/train.h"                     // IWYU pragma: export
#include "src/ml/trainer.h"                   // IWYU pragma: export
#include "src/report/artifact.h"              // IWYU pragma: export
#include "src/report/render.h"                // IWYU pragma: export
#include "src/report/report_spec.h"           // IWYU pragma: export
#include "src/report/summary.h"               // IWYU pragma: export
#include "src/rngx/rng.h"                     // IWYU pragma: export
#include "src/rngx/variation.h"               // IWYU pragma: export
#include "src/stats/bootstrap.h"              // IWYU pragma: export
#include "src/stats/descriptive.h"            // IWYU pragma: export
#include "src/stats/distributions.h"          // IWYU pragma: export
#include "src/stats/multi_dataset.h"          // IWYU pragma: export
#include "src/stats/prob_outperform.h"        // IWYU pragma: export
#include "src/stats/sample_size.h"            // IWYU pragma: export
#include "src/stats/shapiro_wilk.h"           // IWYU pragma: export
#include "src/stats/tests.h"                  // IWYU pragma: export
#include "src/study/result_table.h"           // IWYU pragma: export
#include "src/study/study_runner.h"           // IWYU pragma: export
#include "src/study/study_spec.h"             // IWYU pragma: export

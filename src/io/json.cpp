#include "src/io/json.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace varbench::io {

std::string_view to_string(Json::Type t) {
  switch (t) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kNumber:
      return "number";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "unknown";
}

namespace {

[[noreturn]] void type_error(std::string_view wanted, const Json& got) {
  // The offending value (truncated — arrays/objects can be arbitrarily
  // large) localizes which field of a spec or artifact was mistyped.
  std::string value = got.dump();
  if (value.size() > 64) value.replace(61, std::string::npos, "...");
  throw JsonError("json: expected " + std::string{wanted} + ", got " +
                  std::string{to_string(got.type())} + " " + value);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", *this);
  return bool_;
}

Json::NumKind Json::number_kind() const {
  if (type_ != Type::kNumber) type_error("number", *this);
  return num_kind_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_error("number", *this);
  switch (num_kind_) {
    case NumKind::kDouble:
      return dbl_;
    case NumKind::kUint:
      return static_cast<double>(uint_);
    case NumKind::kInt:
      return static_cast<double>(int_);
  }
  return 0.0;
}

std::uint64_t Json::as_uint64() const {
  if (type_ != Type::kNumber) type_error("unsigned integer", *this);
  switch (num_kind_) {
    case NumKind::kUint:
      return uint_;
    case NumKind::kInt:
      throw JsonError("json: expected unsigned integer, got negative " +
                      dump());
    case NumKind::kDouble: {
      const double d = dbl_;
      if (d < 0.0 || d != std::floor(d) || d > 9007199254740992.0) {
        throw JsonError("json: expected unsigned integer, got " + dump());
      }
      return static_cast<std::uint64_t>(d);
    }
  }
  return 0;
}

std::int64_t Json::as_int64() const {
  if (type_ != Type::kNumber) type_error("integer", *this);
  switch (num_kind_) {
    case NumKind::kInt:
      return int_;
    case NumKind::kUint:
      if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
        throw JsonError("json: integer overflow: " + dump() +
                        " does not fit a signed 64-bit value");
      }
      return static_cast<std::int64_t>(uint_);
    case NumKind::kDouble: {
      const double d = dbl_;
      if (d != std::floor(d) || std::abs(d) > 9007199254740992.0) {
        throw JsonError("json: expected integer, got " + dump());
      }
      return static_cast<std::int64_t>(d);
    }
  }
  return 0;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", *this);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", *this);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", *this);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) {
  return const_cast<Json*>(std::as_const(*this).find(key));
}

const Json& Json::at(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", *this);
  if (const Json* v = find(key)) return *v;
  std::string have;
  for (const auto& [k, v] : obj_) {
    if (!have.empty()) have += ", ";
    have += "'" + k + "'";
  }
  throw JsonError("json: missing key '" + std::string{key} + "' (present: " +
                  (have.empty() ? std::string{"none"} : have) + ")");
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", *this);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", *this);
  arr_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", *this);
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      // Numbers compare by value across kinds (42 == 42.0), except that
      // kinds are preserved on round-trip so artifacts stay byte-stable.
      if (a.num_kind_ == b.num_kind_) {
        switch (a.num_kind_) {
          case Json::NumKind::kDouble:
            return a.dbl_ == b.dbl_;
          case Json::NumKind::kUint:
            return a.uint_ == b.uint_;
          case Json::NumKind::kInt:
            return a.int_ == b.int_;
        }
      }
      return a.as_double() == b.as_double();
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// --------------------------------------------------------------- writer

namespace {

void dump_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no non-finite literals; null is the conventional stand-in
    // and the study layer never emits non-finite measures.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, ptr);
  // Keep number-kind information in the bytes: a double that happens to be
  // integral still reads back as a double.
  if (std::memchr(buf, '.', static_cast<std::size_t>(ptr - buf)) == nullptr &&
      std::memchr(buf, 'e', static_cast<std::size_t>(ptr - buf)) == nullptr &&
      std::memchr(buf, 'n', static_cast<std::size_t>(ptr - buf)) == nullptr) {
    out += ".0";
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      switch (num_kind_) {
        case NumKind::kDouble:
          dump_double(out, dbl_);
          return;
        case NumKind::kUint:
          out += std::to_string(uint_);
          return;
        case NumKind::kInt:
          out += std::to_string(int_);
          return;
      }
      return;
    case Type::kString:
      dump_string(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars stay on one line even in pretty mode — rows of a
      // ResultTable read as rows, not as one value per line.
      bool all_scalar = true;
      for (const Json& v : arr_) {
        if (v.is_array() || v.is_object()) {
          all_scalar = false;
          break;
        }
      }
      out += '[';
      const bool multiline = indent >= 0 && !all_scalar;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += multiline ? "," : (indent >= 0 ? ", " : ",");
        if (multiline) newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (multiline) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        dump_string(out, obj_[i].first);
        out += indent >= 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json parse error at " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string{"expected '"} + c + "'");
    }
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    // Recursion bound: corrupt/adversarial input must throw, not blow the
    // stack. Real specs/artifacts nest a handful of levels.
    if (depth_ >= 256) fail("nesting deeper than 256 levels");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json{parse_string()};
      case 't':
        if (consume_word("true")) return Json{true};
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Json{false};
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Json{};
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      --depth_;
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      --depth_;
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only; specs/artifacts are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string{"invalid escape '\\"} + e + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign handled below by from_chars/strtod on the full token
    }
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (is_integer) {
      if (token[0] == '-') {
        std::int64_t i = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec == std::errc{} && p == token.data() + token.size()) {
          return Json{i};
        }
      } else {
        std::uint64_t u = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (ec == std::errc{} && p == token.data() + token.size()) {
          return Json{u};
        }
      }
      // fall through to double on integer overflow
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      pos_ = start;
      fail("invalid number '" + std::string{token} + "'");
    }
    return Json{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

// ----------------------------------------------------------------- files

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw JsonError("cannot open '" + path + "': " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw JsonError("error reading '" + path + "'");
  return out;
}

void write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw JsonError("cannot write '" + path + "': " + std::strerror(errno));
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool bad = std::fclose(f) != 0 || n != content.size();
  if (bad) throw JsonError("error writing '" + path + "'");
}

}  // namespace varbench::io

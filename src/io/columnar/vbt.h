// VBT1 binary columnar artifacts: a deterministic writer and an
// mmap-backed zero-copy reader for study::ResultTable (docs/artifacts.md).
//
// The writer (`encode_vbt`) is lossless against the JSON artifact: for any
// table, materializing the encoded bytes back (`MappedTable::open` +
// `materialize`) reproduces `canonical_text()` byte for byte, because the
// metadata block *is* the canonical JSON document minus its "rows" and the
// column blocks preserve every cell's exact value and JSON number kind.
//
// The reader maps the file read-only and validates the whole block layout
// up front (magic, version, bounds, 64-byte alignment, overlap, dictionary
// indices, mixed-cell tags) — every failure is an io::JsonError naming the
// path and the byte offset of the offending structure. After open(),
// homogeneous f64 columns surface as std::span<const double> straight off
// the mapping: no parsing, no io::Json cells, no copies.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/io/columnar/format.h"
#include "src/io/json.h"

namespace varbench::study {
class ResultTable;
}  // namespace varbench::study

namespace varbench::io::columnar {

/// Serialize `table` to VBT1 bytes. `include_provenance` mirrors
/// ResultTable::to_json: identity-only bytes (false) are the canonical,
/// byte-comparable form merged artifacts are written in.
[[nodiscard]] std::string encode_vbt(const study::ResultTable& table,
                                     bool include_provenance = true);

/// encode_vbt + io::write_file.
void write_vbt(const std::string& path, const study::ResultTable& table,
               bool include_provenance = true);

/// True when the first bytes of `data` carry the VBT1 magic — the sniff
/// ResultTable::load uses to dispatch between JSON and binary.
[[nodiscard]] bool has_vbt_magic(std::span<const unsigned char> data);

/// A validated, read-only view of a VBT1 file. The file stays mapped (or
/// buffered, on platforms without mmap) for the lifetime of the object;
/// spans returned by the accessors point into that mapping and share its
/// lifetime — hold the MappedTable (e.g. via ResultTable::backing) while
/// using them.
class MappedTable {
 public:
  /// Map + validate. Throws io::JsonError naming `path` and a byte offset
  /// on any structural defect (bad magic, unsupported version, truncation,
  /// misaligned or overlapping blocks, dangling dictionary index, unknown
  /// mixed-cell tag, metadata that is not a valid artifact document).
  [[nodiscard]] static std::shared_ptr<const MappedTable> open(
      const std::string& path);

  ~MappedTable();
  MappedTable(const MappedTable&) = delete;
  MappedTable& operator=(const MappedTable&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_; }
  [[nodiscard]] std::size_t num_columns() const { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return names_;
  }
  [[nodiscard]] ColumnType column_type(std::size_t ci) const;

  /// The artifact metadata document (canonical JSON minus "rows"):
  /// schema, name, optional spec, meta.seed/shard, optional provenance.
  [[nodiscard]] const Json& metadata() const { return meta_; }

  /// Zero-copy payloads. Each throws io::JsonError unless the column has
  /// the matching type; f64_column is the stats-kernel fast path.
  [[nodiscard]] std::span<const double> f64_column(std::size_t ci) const;
  [[nodiscard]] std::span<const std::int64_t> i64_column(std::size_t ci) const;
  [[nodiscard]] std::span<const std::uint64_t> u64_column(
      std::size_t ci) const;
  [[nodiscard]] std::span<const std::uint32_t> dict_indices(
      std::size_t ci) const;
  /// kMixed accessors: one CellTag per row, one u64 payload per row.
  [[nodiscard]] std::span<const std::uint8_t> mixed_tags(std::size_t ci) const;
  [[nodiscard]] std::span<const std::uint64_t> mixed_payload(
      std::size_t ci) const;

  /// The file dictionary (empty when no column stores strings).
  [[nodiscard]] const std::vector<std::string>& dictionary() const {
    return dict_;
  }

  /// Decode one cell to its exact io::Json value (the materialization
  /// primitive; per-cell, so prefer the span accessors on hot paths).
  [[nodiscard]] Json cell(std::size_t row, std::size_t ci) const;

 private:
  MappedTable() = default;

  struct Column {
    ColumnType type = ColumnType::kF64;
    const unsigned char* data = nullptr;
    const unsigned char* aux = nullptr;  // kMixed tags
  };

  [[nodiscard]] const Column& column_at(std::size_t ci,
                                        ColumnType wanted) const;

  std::string path_;
  const unsigned char* base_ = nullptr;  // mapping (or fallback buffer)
  std::size_t size_ = 0;
  bool mmapped_ = false;
  std::size_t rows_ = 0;
  Json meta_;
  std::vector<std::string> names_;
  std::vector<std::string> dict_;
  std::vector<Column> columns_;
};

/// Build the in-memory ResultTable for `mapped`, reusing the JSON reader's
/// validation (the metadata block plus decoded rows go through
/// ResultTable::from_json), and attach `mapped` as the table's backing so
/// column_values/column_span take the zero-copy path.
[[nodiscard]] study::ResultTable materialize(
    std::shared_ptr<const MappedTable> mapped);

}  // namespace varbench::io::columnar

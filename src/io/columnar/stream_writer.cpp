#include "src/io/columnar/stream_writer.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>

#include "src/io/columnar/format.h"
#include "src/io/columnar/vbt.h"
#include "src/metrics/metrics.h"

namespace varbench::io::columnar {

namespace fs = std::filesystem;

namespace {

using study::ResultTable;
using study::Row;

std::size_t element_bytes(ColumnType type) {
  switch (type) {
    case ColumnType::kF64:
    case ColumnType::kI64:
    case ColumnType::kU64:
    case ColumnType::kMixed:
      return 8;
    case ColumnType::kStringDict:
      return 4;
  }
  return 0;
}

/// A buffered sequential writer that tracks the absolute offset and can
/// zero-pad forward — how the streaming path reproduces encode_vbt's
/// deterministic inter-block padding without a full in-memory image.
class PaddedFile {
 public:
  PaddedFile(std::FILE* f, const std::string& path) : f_(f), path_(path) {}

  void write(const void* data, std::size_t bytes) {
    if (bytes == 0) return;
    if (std::fwrite(data, 1, bytes, f_) != bytes) {
      throw JsonError("cannot write '" + path_ + "': " + std::strerror(errno));
    }
    pos_ += bytes;
  }

  /// Zero-fill up to `offset` (the next block's aligned start).
  void pad_to(std::uint64_t offset) {
    static constexpr char kZeros[kBlockAlign] = {};
    while (pos_ < offset) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(offset - pos_, sizeof kZeros));
      write(kZeros, n);
    }
  }

  [[nodiscard]] std::uint64_t pos() const { return pos_; }

 private:
  std::FILE* f_;
  const std::string& path_;
  std::uint64_t pos_ = 0;
};

}  // namespace

StreamWriter::StreamWriter(std::string path,
                           const study::ResultTable& prototype,
                           bool include_provenance, std::size_t chunk_rows)
    : path_(std::move(path)),
      spill_path_(path_ + ".spill"),
      include_provenance_(include_provenance),
      chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {
  if (prototype.columns.empty()) {
    throw JsonError("columnar stream '" + path_ + "': table '" +
                    prototype.name + "' has no columns");
  }
  meta_.name = prototype.name;
  meta_.spec = prototype.spec;
  meta_.shard = prototype.shard;
  meta_.seed = prototype.seed;
  meta_.threads = prototype.threads;
  meta_.wall_time_ms = prototype.wall_time_ms;
  meta_.columns = prototype.columns;
  cols_.resize(meta_.columns.size());
  for (ColumnState& c : cols_) {
    c.tags.reserve(chunk_rows_);
    c.payloads.reserve(chunk_rows_);
  }
}

StreamWriter::~StreamWriter() {
  if (!finished_) abort_cleanup();
}

void StreamWriter::abort_cleanup() noexcept {
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  std::error_code ec;
  fs::remove(spill_path_, ec);
  fs::remove(path_, ec);
}

void StreamWriter::append(const study::Row& row) {
  if (finished_) {
    throw JsonError("columnar stream '" + path_ +
                    "': append after finish()");
  }
  if (row.size() != cols_.size()) {
    throw JsonError("columnar stream '" + path_ + "': row " +
                    std::to_string(total_rows_) + " has " +
                    std::to_string(row.size()) + " cell(s), table '" +
                    meta_.name + "' has " + std::to_string(cols_.size()) +
                    " column(s)");
  }
  for (std::size_t ci = 0; ci < cols_.size(); ++ci) {
    ColumnState& col = cols_[ci];
    const Json& cell = row[ci];
    CellTag tag = CellTag::kNull;
    std::uint64_t payload = 0;
    switch (cell.type()) {
      case Json::Type::kNull:
        col.has_other = true;
        break;
      case Json::Type::kBool:
        col.has_other = true;
        tag = cell.as_bool() ? CellTag::kTrue : CellTag::kFalse;
        break;
      case Json::Type::kNumber:
        switch (cell.number_kind()) {
          case Json::NumKind::kDouble: {
            col.has_double = true;
            tag = CellTag::kF64;
            const double d = cell.as_double();
            std::memcpy(&payload, &d, 8);
            break;
          }
          case Json::NumKind::kUint:
            col.has_uint = true;
            col.has_wide_uint |=
                cell.as_uint64() > static_cast<std::uint64_t>(INT64_MAX);
            tag = CellTag::kU64;
            payload = cell.as_uint64();
            break;
          case Json::NumKind::kInt: {
            col.has_int = true;
            tag = CellTag::kI64;
            const std::int64_t i = cell.as_int64();
            std::memcpy(&payload, &i, 8);
            break;
          }
        }
        break;
      case Json::Type::kString: {
        col.has_string = true;
        tag = CellTag::kString;
        const std::string& s = cell.as_string();
        const auto it = intern_.find(s);
        if (it != intern_.end()) {
          payload = it->second;
        } else {
          if (strings_.size() >= UINT32_MAX) {
            throw JsonError("columnar stream '" + path_ +
                            "': more than 2^32-1 distinct strings");
          }
          const auto id = static_cast<std::uint32_t>(strings_.size());
          strings_.push_back(s);
          intern_.emplace(s, id);
          payload = id;
        }
        break;
      }
      default:
        throw JsonError("columnar stream '" + path_ +
                        "': cells must be scalars, got " + cell.dump() +
                        " at row " + std::to_string(total_rows_) +
                        " of column '" + meta_.columns[ci] + "'");
    }
    col.tags.push_back(static_cast<std::uint8_t>(tag));
    col.payloads.push_back(payload);
  }
  ++total_rows_;
  if (cols_.front().tags.size() >= chunk_rows_) spill_chunk();
}

void StreamWriter::spill_chunk() {
  const std::size_t rows = cols_.front().tags.size();
  if (rows == 0) return;
  if (spill_ == nullptr) {
    spill_ = std::fopen(spill_path_.c_str(), "wb+");
    if (spill_ == nullptr) {
      throw JsonError("cannot open spill '" + spill_path_ +
                      "': " + std::strerror(errno));
    }
  }
  std::uint64_t offset = chunk_offsets_.empty()
                             ? 0
                             : chunk_offsets_.back() +
                                   static_cast<std::uint64_t>(
                                       chunk_sizes_.back() * 9 * cols_.size());
  chunk_offsets_.push_back(offset);
  chunk_sizes_.push_back(rows);
  for (ColumnState& col : cols_) {
    if (std::fwrite(col.tags.data(), 1, rows, spill_) != rows ||
        std::fwrite(col.payloads.data(), 8, rows, spill_) != rows) {
      throw JsonError("cannot write spill '" + spill_path_ +
                      "': " + std::strerror(errno));
    }
    col.tags.clear();
    col.payloads.clear();
  }
  metrics::global_sink().add(metrics::kIoStreamChunks);
}

void StreamWriter::read_chunk_column(std::size_t chunk, std::size_t ci,
                                     std::vector<std::uint8_t>& tags,
                                     std::vector<std::uint64_t>& payloads) {
  if (chunk < chunk_sizes_.size()) {
    const std::size_t rows = chunk_sizes_[chunk];
    tags.resize(rows);
    payloads.resize(rows);
    const std::uint64_t at =
        chunk_offsets_[chunk] + static_cast<std::uint64_t>(ci * rows * 9);
    if (std::fseek(spill_, static_cast<long>(at), SEEK_SET) != 0 ||
        std::fread(tags.data(), 1, rows, spill_) != rows ||
        std::fread(payloads.data(), 8, rows, spill_) != rows) {
      throw JsonError("cannot read spill '" + spill_path_ + "' at offset " +
                      std::to_string(at) + ": " + std::strerror(errno));
    }
    return;
  }
  // The final partial chunk never hits the spill; copy from live buffers.
  tags = cols_[ci].tags;
  payloads = cols_[ci].payloads;
}

void StreamWriter::finish() {
  if (finished_) {
    throw JsonError("columnar stream '" + path_ + "': finish() called twice");
  }
  const std::size_t ncols = cols_.size();
  const bool have_tail = !cols_.front().tags.empty();
  const std::size_t num_chunks = chunk_sizes_.size() + (have_tail ? 1 : 0);
  if (have_tail) {
    // Count the tail as a flushed row group too — io.stream_chunks equals
    // the number of row groups the file passed through.
    metrics::global_sink().add(metrics::kIoStreamChunks);
  }
  if (spill_ != nullptr && std::fflush(spill_) != 0) {
    throw JsonError("cannot flush spill '" + spill_path_ +
                    "': " + std::strerror(errno));
  }

  // Type election from the accumulated flags — the same decision table as
  // encode_vbt's elect_type, which scans the cells it no longer has.
  std::vector<ColumnType> types(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const ColumnState& c = cols_[ci];
    const bool has_integer = c.has_uint || c.has_int;
    if (c.has_other || (c.has_string && (c.has_double || has_integer)) ||
        (c.has_double && has_integer) || (c.has_wide_uint && c.has_int)) {
      types[ci] = ColumnType::kMixed;
    } else if (c.has_string) {
      types[ci] = ColumnType::kStringDict;
    } else if (c.has_wide_uint) {
      types[ci] = ColumnType::kU64;
    } else if (has_integer) {
      types[ci] = ColumnType::kI64;
    } else {
      types[ci] = ColumnType::kF64;  // all doubles — and the empty default
    }
  }

  // Final dictionary: first appearance in column-major order (outer loop
  // dictionary-bearing columns, inner loop rows) — exactly the order
  // encode_vbt interns in. Provisional ids (append order) remap to it.
  std::vector<std::uint32_t> remap(strings_.size(), 0);
  std::vector<std::uint8_t> seen(strings_.size(), 0);
  std::vector<std::uint32_t> final_order;
  std::uint64_t dict_bytes = 0;
  std::vector<std::uint8_t> tags;
  std::vector<std::uint64_t> payloads;
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    if (types[ci] != ColumnType::kStringDict &&
        types[ci] != ColumnType::kMixed) {
      continue;
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      read_chunk_column(chunk, ci, tags, payloads);
      for (std::size_t r = 0; r < tags.size(); ++r) {
        if (tags[r] != static_cast<std::uint8_t>(CellTag::kString)) continue;
        const auto prov = static_cast<std::uint32_t>(payloads[r]);
        if (seen[prov] != 0) continue;
        seen[prov] = 1;
        remap[prov] = static_cast<std::uint32_t>(final_order.size());
        final_order.push_back(prov);
      }
    }
  }
  if (!final_order.empty()) {
    dict_bytes = 8 + 4 * static_cast<std::uint64_t>(final_order.size());
    for (const std::uint32_t prov : final_order) {
      dict_bytes += strings_[prov].size();
    }
  }

  const std::string meta_text = meta_.meta_json(include_provenance_).dump();

  // ---- block layout: identical arithmetic to encode_vbt ----
  Header h;
  h.header_bytes = sizeof(Header);
  h.row_count = total_rows_;
  h.column_count = static_cast<std::uint32_t>(ncols);
  std::uint64_t pos = kHeaderEnd;
  h.coldir_offset = align_up(pos);
  pos = h.coldir_offset + sizeof(ColumnEntry) * ncols;
  h.meta_offset = align_up(pos);
  h.meta_bytes = meta_text.size();
  pos = h.meta_offset + h.meta_bytes;
  h.dict_bytes = dict_bytes;
  if (h.dict_bytes > 0) {
    h.dict_offset = align_up(pos);
    pos = h.dict_offset + h.dict_bytes;
  }
  std::vector<ColumnEntry> entries(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    ColumnEntry& e = entries[ci];
    e.type = static_cast<std::uint32_t>(types[ci]);
    if (types[ci] == ColumnType::kMixed) {
      e.aux_offset = align_up(pos);
      e.aux_bytes = total_rows_;
      pos = e.aux_offset + e.aux_bytes;
    }
    e.data_offset = align_up(pos);
    e.data_bytes = total_rows_ * element_bytes(types[ci]);
    pos = e.data_offset + e.data_bytes;
  }
  h.file_bytes = pos;

  // ---- stream the file out ----
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    throw JsonError("cannot open '" + path_ + "': " + std::strerror(errno));
  }
  const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer{f, &std::fclose};
  PaddedFile out{f, path_};
  out.write(kMagic, sizeof kMagic);
  out.write(&h, sizeof h);
  out.pad_to(h.coldir_offset);
  out.write(entries.data(), sizeof(ColumnEntry) * ncols);
  out.pad_to(h.meta_offset);
  out.write(meta_text.data(), meta_text.size());
  if (h.dict_bytes > 0) {
    out.pad_to(h.dict_offset);
    const std::uint64_t count = final_order.size();
    out.write(&count, 8);
    for (const std::uint32_t prov : final_order) {
      const auto len = static_cast<std::uint32_t>(strings_[prov].size());
      out.write(&len, 4);
    }
    for (const std::uint32_t prov : final_order) {
      out.write(strings_[prov].data(), strings_[prov].size());
    }
  }
  std::vector<std::uint32_t> u32_cells;
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    if (types[ci] == ColumnType::kMixed) {
      out.pad_to(entries[ci].aux_offset);
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        read_chunk_column(chunk, ci, tags, payloads);
        out.write(tags.data(), tags.size());
      }
    }
    out.pad_to(entries[ci].data_offset);
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      read_chunk_column(chunk, ci, tags, payloads);
      switch (types[ci]) {
        case ColumnType::kF64:
        case ColumnType::kI64:
        case ColumnType::kU64:
          // Homogeneous numeric payloads were stored as their exact
          // on-disk bits at append time (u64 values <= INT64_MAX share
          // bits with their int64 encoding).
          out.write(payloads.data(), 8 * payloads.size());
          break;
        case ColumnType::kStringDict:
          u32_cells.resize(payloads.size());
          for (std::size_t r = 0; r < payloads.size(); ++r) {
            u32_cells[r] = remap[static_cast<std::uint32_t>(payloads[r])];
          }
          out.write(u32_cells.data(), 4 * u32_cells.size());
          break;
        case ColumnType::kMixed:
          for (std::size_t r = 0; r < payloads.size(); ++r) {
            if (tags[r] == static_cast<std::uint8_t>(CellTag::kString)) {
              payloads[r] = remap[static_cast<std::uint32_t>(payloads[r])];
            }
          }
          out.write(payloads.data(), 8 * payloads.size());
          break;
      }
    }
  }
  if (out.pos() != h.file_bytes) {
    throw JsonError("columnar stream '" + path_ + "': wrote " +
                    std::to_string(out.pos()) + " byte(s), layout computed " +
                    std::to_string(h.file_bytes));
  }
  if (std::fflush(f) != 0) {
    throw JsonError("cannot flush '" + path_ + "': " + std::strerror(errno));
  }

  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
    std::error_code ec;
    fs::remove(spill_path_, ec);
  }
  finished_ = true;
}

void stream_merge_vbt(const std::vector<std::string>& shard_paths,
                      const std::string& out_path, bool include_provenance,
                      std::size_t chunk_rows) {
  if (shard_paths.empty()) {
    // varlint: allow(error-names-path) -- no input file exists to name:
    // the caller passed an empty shard list. Text mirrors
    // study::merge_result_tables so both merge paths fail identically.
    throw JsonError("merge: no shard tables given");
  }

  struct Shard {
    std::shared_ptr<const MappedTable> mapped;
    study::ResultTable meta;  // metadata only, rows empty
  };
  std::vector<Shard> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    Shard s;
    s.mapped = MappedTable::open(path);
    // Metadata rides the exact JSON document to_json writes (minus
    // "rows"), so from_json's validation applies unchanged.
    Json doc = s.mapped->metadata();
    doc.set("rows", Json::array());
    try {
      s.meta = study::ResultTable::from_json(doc);
    } catch (const JsonError& e) {
      throw JsonError("columnar artifact '" + path +
                      "': metadata: " + e.what());
    }
    shards.push_back(std::move(s));
  }

  const std::size_t count = shards.front().meta.shard.count;
  if (shards.size() != count) {
    // varlint: allow(error-names-path) -- a cross-file cardinality defect:
    // no single shard is the culprit. Text mirrors
    // study::merge_result_tables so both merge paths fail identically.
    throw JsonError("merge: got " + std::to_string(shards.size()) +
                    " tables for a " + std::to_string(count) +
                    "-shard study (need every shard exactly once)");
  }
  std::sort(shards.begin(), shards.end(), [](const Shard& a, const Shard& b) {
    return a.meta.shard.index < b.meta.shard.index;
  });
  const study::ResultTable& first = shards.front().meta;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const study::ResultTable& t = shards[i].meta;
    if (t.shard.count != count) {
      // varlint: allow(error-names-path) -- the shard label pinpoints the
      // offender; text mirrors study::merge_result_tables byte for byte.
      throw JsonError("merge: shard counts disagree (" + t.shard.label() +
                      " vs ../" + std::to_string(count) + ")");
    }
    if (t.shard.index != i) {
      // varlint: allow(error-names-path) -- the shard label pinpoints the
      // offender; text mirrors study::merge_result_tables byte for byte.
      throw JsonError("merge: shard " + std::to_string(i) + " is " +
                      (t.shard.index < i ? "duplicated" : "missing") +
                      " (have shard " + t.shard.label() + " instead)");
    }
    if (t.name != first.name || t.spec != first.spec || t.seed != first.seed ||
        t.columns != first.columns) {
      throw JsonError("merge: table " + std::to_string(i) + " ('" + t.name +
                      "', seed " + std::to_string(t.seed) +
                      ") does not belong to the same study as shard 0 ('" +
                      first.name + "', seed " + std::to_string(first.seed) +
                      ") — name, spec, seed, and columns must all match");
    }
  }

  study::ResultTable proto;
  proto.name = first.name;
  proto.spec = first.spec;
  proto.seed = first.seed;
  proto.shard = study::ShardSpec{};  // unsharded normal form
  proto.threads = 0;                 // mixed; provenance only
  proto.columns = first.columns;
  for (const Shard& s : shards) proto.wall_time_ms += s.meta.wall_time_ms;

  const std::size_t ncols = first.columns.size();
  const std::size_t seq_col = proto.column_index("seq");
  bool all_sorted = true;
  std::size_t total = 0;
  for (const Shard& s : shards) {
    const std::size_t nrows = s.mapped->num_rows();
    total += nrows;
    for (std::size_t r = 0; r + 1 < nrows && all_sorted; ++r) {
      all_sorted = s.mapped->cell(r, seq_col).as_uint64() <=
                   s.mapped->cell(r + 1, seq_col).as_uint64();
    }
  }
  if (!all_sorted) {
    // Hand-assembled artifacts with shuffled rows: bounded memory is off
    // the table anyway (the sort needs them all), so defer to the
    // in-memory merge and stream its output.
    std::vector<study::ResultTable> tables;
    tables.reserve(shards.size());
    for (Shard& s : shards) tables.push_back(materialize(s.mapped));
    const study::ResultTable merged =
        study::merge_result_tables(std::move(tables));
    StreamWriter writer{out_path, merged, include_provenance, chunk_rows};
    for (const study::Row& row : merged.rows) writer.append(row);
    writer.finish();
    return;
  }

  StreamWriter writer{out_path, proto, include_provenance, chunk_rows};
  std::vector<std::size_t> head(shards.size(), 0);
  study::Row row;
  for (std::size_t position = 0; position < total; ++position) {
    std::size_t best = shards.size();
    std::uint64_t best_seq = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (head[s] >= shards[s].mapped->num_rows()) continue;
      const std::uint64_t seq =
          shards[s].mapped->cell(head[s], seq_col).as_uint64();
      if (best == shards.size() || seq < best_seq) {
        best = s;
        best_seq = seq;
      }
    }
    if (best_seq != position) {
      // varlint: allow(error-names-path) -- the broken position/seq pair is
      // the localizing context (the gap spans shards); text mirrors
      // study::merge_result_tables byte for byte.
      throw JsonError("merge: row sequence broken at position " +
                      std::to_string(position) + " (seq " +
                      std::to_string(best_seq) +
                      ") — a shard is missing rows or two shards overlap");
    }
    const MappedTable& m = *shards[best].mapped;
    row.clear();
    row.reserve(ncols);
    for (std::size_t ci = 0; ci < ncols; ++ci) {
      row.push_back(m.cell(head[best], ci));
    }
    ++head[best];
    writer.append(row);
  }
  writer.finish();
}

}  // namespace varbench::io::columnar

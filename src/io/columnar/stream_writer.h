// Streaming chunked VBT1 writer (ROADMAP item 1 follow-up).
//
// write_vbt holds the whole ResultTable plus the encoded file in memory —
// fine for figure studies, hopeless for 10^8-row campaign merges. The
// StreamWriter instead accepts rows one at a time, buffers a fixed-size
// row-group chunk, and spills full chunks to a temp file beside the
// output; finish() then elects column types, builds the dictionary, and
// streams the final file out chunk by chunk. Peak memory is bounded by
// one chunk (ncols x chunk_rows x 9 bytes) plus the string intern table —
// never by the row count.
//
// Byte-exactness contract: for the same metadata and row sequence,
// finish() produces exactly the bytes encode_vbt/write_vbt produce —
// same type election (accumulated as order-independent flags), same
// first-appearance column-major dictionary (provisional row-order intern
// ids are remapped in a column-major scan at finish), same block layout
// and zero padding. tests/test_resample_kernels.cpp pins this at several
// chunk sizes including non-divisor tails.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/study/result_table.h"

namespace varbench::io::columnar {

class StreamWriter {
 public:
  /// 64Ki rows x 9 bytes per cell ≈ 0.6 MB per column per chunk.
  static constexpr std::size_t kDefaultChunkRows = 65536;

  /// `prototype` supplies everything but the rows: name, spec, seed,
  /// shard, columns, and (when `include_provenance`) threads/wall time.
  /// Its own rows are ignored. Throws when it has no columns.
  StreamWriter(std::string path, const study::ResultTable& prototype,
               bool include_provenance = true,
               std::size_t chunk_rows = kDefaultChunkRows);

  /// Aborts (removes the spill and any partial output) unless finish()
  /// completed.
  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Append one row (arity-checked, scalar cells only). Spills a chunk to
  /// the temp file whenever `chunk_rows` rows have accumulated.
  void append(const study::Row& row);

  /// Elect types, build the dictionary, write the final byte-exact VBT
  /// file, and remove the spill. Must be called exactly once.
  void finish();

  [[nodiscard]] std::size_t rows_appended() const { return total_rows_; }

 private:
  struct ColumnState {
    // Chunk-local cell buffers: CellTag + 8-byte payload per cell
    // (strings carry a provisional intern id until finish()).
    std::vector<std::uint8_t> tags;
    std::vector<std::uint64_t> payloads;
    // Order-independent type-election flags, accumulated per cell —
    // the same booleans encode_vbt's elect_type derives from a full scan.
    bool has_double = false;
    bool has_uint = false;
    bool has_int = false;
    bool has_wide_uint = false;
    bool has_string = false;
    bool has_other = false;
  };

  void spill_chunk();
  void read_chunk_column(std::size_t chunk, std::size_t ci,
                         std::vector<std::uint8_t>& tags,
                         std::vector<std::uint64_t>& payloads);
  void abort_cleanup() noexcept;

  std::string path_;
  std::string spill_path_;
  study::ResultTable meta_;  // prototype minus rows
  bool include_provenance_;
  std::size_t chunk_rows_;
  std::size_t total_rows_ = 0;
  bool finished_ = false;

  std::vector<ColumnState> cols_;
  // Provisional string intern table, appearance order of append() calls.
  std::unordered_map<std::string, std::uint32_t> intern_;
  std::vector<std::string> strings_;

  std::FILE* spill_ = nullptr;              // write handle while appending
  std::vector<std::size_t> chunk_sizes_;    // rows per spilled chunk
  std::vector<std::uint64_t> chunk_offsets_;  // spill-file offsets
};

/// K-way streaming merge of VBT shard artifacts into one merged VBT file,
/// without materializing any table: shards are mmap'd, validated with the
/// same rules as study::merge_result_tables (every shard exactly once,
/// identity fields matching, merged seq must be 0..n-1), and their rows
/// are merged in ascending "seq" order straight into a StreamWriter.
/// Byte-exact with encode_vbt(merge_result_tables(shards)) for the same
/// inputs. Shards whose rows are not seq-sorted fall back to the
/// in-memory merge path (study runners always emit sorted shards).
void stream_merge_vbt(const std::vector<std::string>& shard_paths,
                      const std::string& out_path,
                      bool include_provenance = true,
                      std::size_t chunk_rows = StreamWriter::kDefaultChunkRows);

}  // namespace varbench::io::columnar

// On-disk layout of the VBT1 binary columnar ResultTable artifact
// (docs/artifacts.md). Design constraints, in order:
//
//   1. Lossless interchange with the JSON v1/v2 artifact: every cell kind
//      the io::Json layer distinguishes (double, unsigned, signed, string,
//      bool, null) survives a JSON -> VBT -> JSON round trip with
//      `canonical_text()` byte-identical, because doubles are stored as
//      their exact IEEE-754 bits (strictly more information than the
//      shortest-round-trip decimal they serialize to) and integer kinds
//      are recoverable from the sign.
//   2. Zero-copy load. Every block offset is 64-byte aligned, so an
//      mmap'd file (page-aligned base) surfaces f64 columns directly as
//      std::span<const double> — no lexing, no per-cell materialization.
//   3. Deterministic bytes. The writer has exactly one rendering per
//      table (first-appearance dictionary order, zero padding, canonical
//      metadata JSON), so the shard/merge byte-identity contract of the
//      JSON artifact carries over to the binary one.
//
// File layout (all integers little-endian; every offset from file start):
//
//   [0,  8)   magic "VBT1\r\n\x1a\n" (PNG-style: the \r\n and \x1a catch
//             text-mode and DOS-type mangling before the header is read)
//   [8, 80)   fixed header (Header below, 72 bytes)
//   coldir    column_count directory entries (ColumnEntry, 40 bytes each)
//   meta      canonical JSON metadata block: the artifact's to_json()
//             document minus "rows" (schema/name/spec/meta/columns[
//             /provenance]) — spec, seed, shard, and provenance ride the
//             existing JSON serialization unchanged
//   dict      string dictionary (when any column stores strings):
//             u64 count, count x u32 byte lengths, concatenated bytes
//   columns   one data block per column, in column order; kMixed columns
//             put their tag block (aux) before their payload block
//
// Endianness policy: the format is defined little-endian and this build
// refuses to compile on big-endian hosts (static_assert below) rather
// than byte-swapping on read — every deployment target is little-endian
// and a silent swap path would be permanently untested.
#pragma once

#include <bit>
#include <cstdint>

namespace varbench::io::columnar {

static_assert(std::endian::native == std::endian::little,
              "VBT1 artifacts are little-endian on disk; reading them on a "
              "big-endian host would need a byte-swapping reader that does "
              "not exist yet");

inline constexpr unsigned char kMagic[8] = {'V', 'B',  'T',    '1',
                                            '\r', '\n', 0x1a, '\n'};
inline constexpr std::uint32_t kVersion = 1;

/// Every block (directory, metadata, dictionary, column data, column tags)
/// starts on a 64-byte boundary so mmap'd column payloads are aligned for
/// any scalar or vector access width.
inline constexpr std::uint64_t kBlockAlign = 64;

/// How each column's cells are encoded. The writer elects the narrowest
/// homogeneous encoding; kMixed is the lossless fallback for columns
/// holding nulls, bools, or more than one number kind.
enum class ColumnType : std::uint32_t {
  /// n x f64 — every cell a JSON double (exact IEEE-754 bits).
  kF64 = 0,
  /// n x i64 — every cell an integer representable in int64; the JSON
  /// number kind is recovered from the sign (negative -> signed, else
  /// unsigned), matching the parser's convention.
  kI64 = 1,
  /// n x u64 — every cell a non-negative integer, at least one above
  /// INT64_MAX (full-range seeds).
  kU64 = 2,
  /// n x u32 indices into the file dictionary — every cell a string.
  kStringDict = 3,
  /// n x u8 tags (aux block) + n x u64 payloads (data block); see CellTag.
  kMixed = 4,
};

/// Per-cell tag of a kMixed column. Payload meaning per tag: kNull/kFalse/
/// kTrue -> 0, kF64 -> IEEE-754 bits, kU64/kI64 -> integer bits,
/// kString -> dictionary index.
enum class CellTag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kF64 = 3,
  kU64 = 4,
  kI64 = 5,
  kString = 6,
};

/// Fixed header at byte offset 8. Plain-old-data with every field aligned
/// to its natural boundary, so it reads straight off the mapping.
struct Header {
  std::uint32_t version = kVersion;
  std::uint32_t header_bytes = 0;  // sizeof(Header); forward sanity check
  std::uint64_t row_count = 0;
  std::uint32_t column_count = 0;
  std::uint32_t flags = 0;  // reserved, must be 0 in v1
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_bytes = 0;
  std::uint64_t dict_offset = 0;  // 0 when the file has no dictionary
  std::uint64_t dict_bytes = 0;
  std::uint64_t coldir_offset = 0;
  std::uint64_t file_bytes = 0;  // total size — cheap truncation check
};
static_assert(sizeof(Header) == 72, "VBT1 header is 72 bytes on disk");

/// One column directory entry at coldir_offset + 40 * column_index.
struct ColumnEntry {
  std::uint32_t type = 0;      // ColumnType
  std::uint32_t reserved = 0;  // must be 0 in v1
  std::uint64_t data_offset = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t aux_offset = 0;  // kMixed tag block; 0 otherwise
  std::uint64_t aux_bytes = 0;
};
static_assert(sizeof(ColumnEntry) == 40, "VBT1 column entry is 40 bytes");

inline constexpr std::uint64_t kHeaderEnd = 8 + sizeof(Header);

[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t offset) {
  return (offset + kBlockAlign - 1) & ~(kBlockAlign - 1);
}

}  // namespace varbench::io::columnar

#include "src/io/columnar/vbt.h"

#include <cerrno>
#include <cstring>
#include <map>

#include "src/metrics/metrics.h"
#include "src/metrics/stopwatch.h"
#include "src/rngx/rng.h"
#include "src/study/result_table.h"
#include "src/trace/stopwatch.h"
#include "src/trace/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define VARBENCH_HAVE_MMAP 1
#else
#include <cstdio>
#define VARBENCH_HAVE_MMAP 0
#endif

namespace varbench::io::columnar {

namespace {

using study::ResultTable;
using study::Row;

[[noreturn]] void fail(const std::string& path, std::uint64_t offset,
                       const std::string& what) {
  throw JsonError("columnar artifact '" + path + "': " + what +
                  " (byte offset " + std::to_string(offset) + ")");
}

/// Identity-derived span ident for one artifact: hash of the file NAME
/// only (e.g. "s0-0of2.vbt"), never the full path, so traces of the same
/// campaign compare equal across state directories (docs/tracing.md).
std::uint64_t file_span_ident(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
  return rngx::hash_tag(path);
}

std::size_t element_bytes(ColumnType type) {
  switch (type) {
    case ColumnType::kF64:
    case ColumnType::kI64:
    case ColumnType::kU64:
    case ColumnType::kMixed:
      return 8;
    case ColumnType::kStringDict:
      return 4;
  }
  return 0;
}

// ---------------------------------------------------------------- writer

/// First-appearance string dictionary over every string cell, scanning
/// columns in column order and rows in row order — one deterministic
/// rendering per table.
struct Dictionary {
  std::vector<std::string> strings;
  std::map<std::string, std::uint32_t> index;

  std::uint32_t intern(const std::string& s) {
    const auto it = index.find(s);
    if (it != index.end()) return it->second;
    if (strings.size() >= UINT32_MAX) {
      // varlint: allow(error-names-path) -- encoder capacity limit hit while
      // writing, not reading: there is no input file or offset to name, and
      // the 2^32nd distinct string is not worth echoing.
      throw JsonError("columnar: more than 2^32-1 distinct strings");
    }
    const auto id = static_cast<std::uint32_t>(strings.size());
    strings.push_back(s);
    index.emplace(s, id);
    return id;
  }

  [[nodiscard]] std::uint64_t encoded_bytes() const {
    if (strings.empty()) return 0;
    std::uint64_t bytes = 8 + 4 * static_cast<std::uint64_t>(strings.size());
    for (const auto& s : strings) bytes += s.size();
    return bytes;
  }
};

/// The narrowest lossless encoding for one column of cells.
ColumnType elect_type(const ResultTable& table, std::size_t ci) {
  bool has_double = false;
  bool has_uint = false;       // non-negative integers
  bool has_int = false;        // negative integers
  bool has_wide_uint = false;  // above INT64_MAX — needs u64 storage
  bool has_string = false;
  bool has_other = false;  // null / bool
  for (const Row& row : table.rows) {
    const Json& cell = row[ci];
    switch (cell.type()) {
      case Json::Type::kNumber:
        switch (cell.number_kind()) {
          case Json::NumKind::kDouble:
            has_double = true;
            break;
          case Json::NumKind::kUint:
            has_uint = true;
            has_wide_uint |= cell.as_uint64() >
                             static_cast<std::uint64_t>(INT64_MAX);
            break;
          case Json::NumKind::kInt:
            has_int = true;
            break;
        }
        break;
      case Json::Type::kString:
        has_string = true;
        break;
      default:
        has_other = true;
    }
  }
  const bool has_integer = has_uint || has_int;
  if (has_other || (has_string && (has_double || has_integer)) ||
      (has_double && has_integer) || (has_wide_uint && has_int)) {
    return ColumnType::kMixed;
  }
  if (has_string) return ColumnType::kStringDict;
  if (has_wide_uint) return ColumnType::kU64;
  if (has_integer) return ColumnType::kI64;
  return ColumnType::kF64;  // all doubles — and the empty-table default
}

void put_u64(unsigned char* at, std::uint64_t v) { std::memcpy(at, &v, 8); }
void put_f64(unsigned char* at, double v) { std::memcpy(at, &v, 8); }
void put_i64(unsigned char* at, std::int64_t v) { std::memcpy(at, &v, 8); }
void put_u32(unsigned char* at, std::uint32_t v) { std::memcpy(at, &v, 4); }

}  // namespace

std::string encode_vbt(const ResultTable& table, bool include_provenance) {
  const std::size_t ncols = table.columns.size();
  const std::uint64_t nrows = table.rows.size();
  if (ncols == 0) {
    throw JsonError("columnar: table '" + table.name + "' has no columns");
  }

  std::vector<ColumnType> types(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) types[ci] = elect_type(table, ci);

  // Intern every string cell up front so the dictionary block can be laid
  // out before the column payloads that reference it.
  Dictionary dict;
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    if (types[ci] != ColumnType::kStringDict &&
        types[ci] != ColumnType::kMixed) {
      continue;
    }
    for (const Row& row : table.rows) {
      if (row[ci].is_string()) dict.intern(row[ci].as_string());
    }
  }

  const std::string meta_text = table.meta_json(include_provenance).dump();

  // ---- lay the blocks out (every block 64-byte aligned) ----
  Header h;
  h.header_bytes = sizeof(Header);
  h.row_count = nrows;
  h.column_count = static_cast<std::uint32_t>(ncols);
  std::uint64_t pos = kHeaderEnd;
  h.coldir_offset = align_up(pos);
  pos = h.coldir_offset + sizeof(ColumnEntry) * ncols;
  h.meta_offset = align_up(pos);
  h.meta_bytes = meta_text.size();
  pos = h.meta_offset + h.meta_bytes;
  h.dict_bytes = dict.encoded_bytes();
  if (h.dict_bytes > 0) {
    h.dict_offset = align_up(pos);
    pos = h.dict_offset + h.dict_bytes;
  }
  std::vector<ColumnEntry> entries(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    ColumnEntry& e = entries[ci];
    e.type = static_cast<std::uint32_t>(types[ci]);
    if (types[ci] == ColumnType::kMixed) {
      e.aux_offset = align_up(pos);
      e.aux_bytes = nrows;
      pos = e.aux_offset + e.aux_bytes;
    }
    e.data_offset = align_up(pos);
    e.data_bytes = nrows * element_bytes(types[ci]);
    pos = e.data_offset + e.data_bytes;
  }
  h.file_bytes = pos;

  // ---- fill (gaps between blocks stay zero — deterministic padding) ----
  std::string file(static_cast<std::size_t>(pos), '\0');
  auto* out = reinterpret_cast<unsigned char*>(file.data());
  std::memcpy(out, kMagic, sizeof kMagic);
  std::memcpy(out + 8, &h, sizeof h);
  std::memcpy(out + h.coldir_offset, entries.data(),
              sizeof(ColumnEntry) * ncols);
  std::memcpy(out + h.meta_offset, meta_text.data(), meta_text.size());
  if (h.dict_bytes > 0) {
    unsigned char* at = out + h.dict_offset;
    put_u64(at, dict.strings.size());
    at += 8;
    for (const auto& s : dict.strings) {
      put_u32(at, static_cast<std::uint32_t>(s.size()));
      at += 4;
    }
    for (const auto& s : dict.strings) {
      std::memcpy(at, s.data(), s.size());
      at += s.size();
    }
  }
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    unsigned char* data = out + entries[ci].data_offset;
    unsigned char* tags = out + entries[ci].aux_offset;
    for (std::uint64_t r = 0; r < nrows; ++r) {
      const Json& cell = table.rows[r][ci];
      switch (types[ci]) {
        case ColumnType::kF64:
          put_f64(data + 8 * r, cell.as_double());
          break;
        case ColumnType::kI64:
          put_i64(data + 8 * r, cell.as_int64());
          break;
        case ColumnType::kU64:
          put_u64(data + 8 * r, cell.as_uint64());
          break;
        case ColumnType::kStringDict:
          put_u32(data + 4 * r, dict.index.at(cell.as_string()));
          break;
        case ColumnType::kMixed: {
          CellTag tag = CellTag::kNull;
          std::uint64_t payload = 0;
          switch (cell.type()) {
            case Json::Type::kNull:
              break;
            case Json::Type::kBool:
              tag = cell.as_bool() ? CellTag::kTrue : CellTag::kFalse;
              break;
            case Json::Type::kNumber:
              switch (cell.number_kind()) {
                case Json::NumKind::kDouble: {
                  tag = CellTag::kF64;
                  const double d = cell.as_double();
                  std::memcpy(&payload, &d, 8);
                  break;
                }
                case Json::NumKind::kUint:
                  tag = CellTag::kU64;
                  payload = cell.as_uint64();
                  break;
                case Json::NumKind::kInt: {
                  tag = CellTag::kI64;
                  const std::int64_t i = cell.as_int64();
                  std::memcpy(&payload, &i, 8);
                  break;
                }
              }
              break;
            case Json::Type::kString:
              tag = CellTag::kString;
              payload = dict.index.at(cell.as_string());
              break;
            default:
              throw JsonError("columnar: cells must be scalars, got " +
                              cell.dump() + " at row " + std::to_string(r) +
                              " of column '" + table.columns[ci] + "'");
          }
          tags[r] = static_cast<std::uint8_t>(tag);
          put_u64(data + 8 * r, payload);
          break;
        }
      }
    }
  }
  return file;
}

void write_vbt(const std::string& path, const ResultTable& table,
               bool include_provenance) {
  write_file(path, encode_vbt(table, include_provenance));
}

bool has_vbt_magic(std::span<const unsigned char> data) {
  return data.size() >= sizeof kMagic &&
         std::memcmp(data.data(), kMagic, sizeof kMagic) == 0;
}

// ---------------------------------------------------------------- reader

MappedTable::~MappedTable() {
  if (base_ == nullptr) return;
#if VARBENCH_HAVE_MMAP
  if (mmapped_) {
    ::munmap(const_cast<unsigned char*>(base_), size_);
    return;
  }
#endif
  delete[] base_;
}

std::shared_ptr<const MappedTable> MappedTable::open(const std::string& path) {
  // Like the metrics adds below, spans are load-path provenance on the
  // global tracer; the ident hash is only computed when the span is live.
  trace::Tracer& tracer = trace::global_tracer();
  const trace::ScopedSpan map_span{
      tracer, trace::kIoVbtMap,
      tracer.is_enabled(trace::kIoVbtMap) ? file_span_ident(path) : 0};
  std::shared_ptr<MappedTable> t{new MappedTable};
  t->path_ = path;

#if VARBENCH_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw JsonError("cannot open '" + path + "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    const int err = errno;
    ::close(fd);
    throw JsonError("cannot stat '" + path + "': " + std::strerror(err));
  }
  t->size_ = static_cast<std::size_t>(st.st_size);
  if (t->size_ > 0) {
    void* map = ::mmap(nullptr, t->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw JsonError("cannot mmap '" + path + "': " + std::strerror(errno));
    }
    t->base_ = static_cast<const unsigned char*>(map);
    t->mmapped_ = true;
  } else {
    ::close(fd);
  }
#else
  // No mmap on this platform: read the whole file into a heap buffer. The
  // span accessors work identically; only the zero-copy property is lost.
  const std::string bytes = read_file(path);
  t->size_ = bytes.size();
  auto* buf = new unsigned char[t->size_ > 0 ? t->size_ : 1];
  std::memcpy(buf, bytes.data(), t->size_);
  t->base_ = buf;
#endif

  const std::string& p = t->path_;
  const unsigned char* base = t->base_;
  const std::size_t size = t->size_;
  if (size < kHeaderEnd) {
    fail(p, 0,
         "truncated — file holds " + std::to_string(size) +
             " byte(s), the magic + header need " +
             std::to_string(kHeaderEnd));
  }
  if (!has_vbt_magic({base, size})) {
    fail(p, 0, "bad magic — not a VBT1 artifact");
  }
  Header h;
  std::memcpy(&h, base + 8, sizeof h);
  if (h.version != kVersion) {
    fail(p, 8,
         "unsupported version " + std::to_string(h.version) +
             " (this build reads version " + std::to_string(kVersion) + ")");
  }
  if (h.header_bytes != sizeof(Header)) {
    fail(p, 12,
         "header size " + std::to_string(h.header_bytes) + " != " +
             std::to_string(sizeof(Header)));
  }
  if (h.flags != 0) {
    fail(p, 28, "reserved header flags must be 0, got " +
                    std::to_string(h.flags));
  }
  if (h.file_bytes != size) {
    fail(p, 72,
         "truncated or oversized — header says " +
             std::to_string(h.file_bytes) + " byte(s), file holds " +
             std::to_string(size));
  }
  if (h.column_count == 0) fail(p, 24, "table has no columns");
  if (h.column_count > (1u << 20)) {
    fail(p, 24, "implausible column count " + std::to_string(h.column_count));
  }
  if (h.row_count > (std::uint64_t{1} << 48)) {
    fail(p, 16, "implausible row count " + std::to_string(h.row_count));
  }
  t->rows_ = static_cast<std::size_t>(h.row_count);

  // Every block must be 64-byte aligned and inside the file, and no two
  // blocks may overlap. Collect the ranges as they are validated, then
  // check disjointness once at the end.
  struct Range {
    std::uint64_t off = 0;
    std::uint64_t bytes = 0;
    std::string label;
  };
  std::vector<Range> ranges;
  const auto check_block = [&](std::uint64_t off, std::uint64_t bytes,
                               const std::string& label) {
    if (bytes == 0) return;
    if (off % kBlockAlign != 0) {
      fail(p, off, label + " block is not 64-byte aligned");
    }
    if (off < kHeaderEnd || off > size || bytes > size - off) {
      fail(p, off,
           label + " block [" + std::to_string(off) + ", " +
               std::to_string(off + bytes) + ") is out of bounds (file holds " +
               std::to_string(size) + " byte(s))");
    }
    ranges.push_back(Range{off, bytes, label});
  };

  const std::uint64_t coldir_bytes =
      sizeof(ColumnEntry) * std::uint64_t{h.column_count};
  check_block(h.coldir_offset, coldir_bytes, "column directory");
  check_block(h.meta_offset, h.meta_bytes, "metadata");
  if (h.meta_bytes == 0) fail(p, h.meta_offset, "metadata block is empty");

  try {
    t->meta_ = Json::parse(std::string_view{
        reinterpret_cast<const char*>(base + h.meta_offset),
        static_cast<std::size_t>(h.meta_bytes)});
  } catch (const JsonError& e) {
    fail(p, h.meta_offset, std::string{"metadata block: "} + e.what());
  }
  const Json* columns = t->meta_.find("columns");
  if (columns == nullptr || !columns->is_array()) {
    fail(p, h.meta_offset, "metadata block has no \"columns\" array");
  }
  for (const Json& c : columns->as_array()) {
    if (!c.is_string()) {
      fail(p, h.meta_offset, "metadata column names must be strings");
    }
    t->names_.push_back(c.as_string());
  }
  if (t->names_.size() != h.column_count) {
    fail(p, h.meta_offset,
         "metadata lists " + std::to_string(t->names_.size()) +
             " column(s) but the header says " +
             std::to_string(h.column_count));
  }

  if (h.dict_offset != 0 || h.dict_bytes != 0) {
    check_block(h.dict_offset, h.dict_bytes, "dictionary");
    if (h.dict_bytes < 8) {
      fail(p, h.dict_offset, "dictionary block too small");
    }
    std::uint64_t count = 0;
    std::memcpy(&count, base + h.dict_offset, 8);
    if (count == 0 || count > (h.dict_bytes - 8) / 4) {
      fail(p, h.dict_offset,
           "dictionary count " + std::to_string(count) +
               " does not fit its block of " + std::to_string(h.dict_bytes) +
               " byte(s)");
    }
    std::uint64_t total = 8 + 4 * count;
    const unsigned char* lengths = base + h.dict_offset + 8;
    std::vector<std::uint32_t> lens(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::memcpy(&lens[i], lengths + 4 * i, 4);
      total += lens[i];
    }
    if (total != h.dict_bytes) {
      fail(p, h.dict_offset,
           "dictionary strings cover " + std::to_string(total) +
               " byte(s) but the block holds " + std::to_string(h.dict_bytes));
    }
    const char* bytes = reinterpret_cast<const char*>(lengths + 4 * count);
    t->dict_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      t->dict_.emplace_back(bytes, lens[i]);
      bytes += lens[i];
    }
  }

  t->columns_.resize(h.column_count);
  for (std::uint32_t ci = 0; ci < h.column_count; ++ci) {
    const std::uint64_t entry_off = h.coldir_offset + sizeof(ColumnEntry) * ci;
    ColumnEntry e;
    std::memcpy(&e, base + entry_off, sizeof e);
    const std::string label =
        "column " + std::to_string(ci) + " '" + t->names_[ci] + "'";
    if (e.type > static_cast<std::uint32_t>(ColumnType::kMixed)) {
      fail(p, entry_off, label + " has unknown type " + std::to_string(e.type));
    }
    if (e.reserved != 0) {
      fail(p, entry_off, label + " has nonzero reserved field");
    }
    const auto type = static_cast<ColumnType>(e.type);
    const std::uint64_t want = h.row_count * element_bytes(type);
    if (e.data_bytes != want) {
      fail(p, entry_off,
           label + " data block holds " + std::to_string(e.data_bytes) +
               " byte(s), want " + std::to_string(want) + " for " +
               std::to_string(h.row_count) + " row(s)");
    }
    check_block(e.data_offset, e.data_bytes, label + " data");
    if (type == ColumnType::kMixed) {
      if (e.aux_bytes != h.row_count) {
        fail(p, entry_off,
             label + " tag block holds " + std::to_string(e.aux_bytes) +
                 " byte(s), want one tag per row (" +
                 std::to_string(h.row_count) + ")");
      }
      check_block(e.aux_offset, e.aux_bytes, label + " tags");
    } else if (e.aux_offset != 0 || e.aux_bytes != 0) {
      fail(p, entry_off, label + " carries an aux block but is not mixed");
    }
    Column& col = t->columns_[ci];
    col.type = type;
    col.data = base + e.data_offset;
    col.aux = type == ColumnType::kMixed ? base + e.aux_offset : nullptr;

    // Per-cell structural validation: dictionary references must resolve
    // and mixed tags must be known. A linear scan over small integer
    // arrays — no io::Json is materialized.
    if (type == ColumnType::kStringDict) {
      for (std::uint64_t r = 0; r < h.row_count; ++r) {
        std::uint32_t idx = 0;
        std::memcpy(&idx, col.data + 4 * r, 4);
        if (idx >= t->dict_.size()) {
          fail(p, e.data_offset + 4 * r,
               label + " row " + std::to_string(r) + ": string-dict index " +
                   std::to_string(idx) + " out of range (dictionary holds " +
                   std::to_string(t->dict_.size()) + ")");
        }
      }
    } else if (type == ColumnType::kMixed) {
      for (std::uint64_t r = 0; r < h.row_count; ++r) {
        const std::uint8_t tag = col.aux[r];
        if (tag > static_cast<std::uint8_t>(CellTag::kString)) {
          fail(p, e.aux_offset + r,
               label + " row " + std::to_string(r) + ": unknown cell tag " +
                   std::to_string(tag));
        }
        if (tag == static_cast<std::uint8_t>(CellTag::kString)) {
          std::uint64_t idx = 0;
          std::memcpy(&idx, col.data + 8 * r, 8);
          if (idx >= t->dict_.size()) {
            fail(p, e.data_offset + 8 * r,
                 label + " row " + std::to_string(r) + ": string-dict index " +
                     std::to_string(idx) + " out of range (dictionary holds " +
                     std::to_string(t->dict_.size()) + ")");
          }
        }
      }
    }
  }

  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.off < b.off; });
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    const Range& prev = ranges[i - 1];
    const Range& cur = ranges[i];
    if (prev.off + prev.bytes > cur.off) {
      fail(p, cur.off,
           cur.label + " block [" + std::to_string(cur.off) + ", " +
               std::to_string(cur.off + cur.bytes) + ") overlaps " +
               prev.label + " block [" + std::to_string(prev.off) + ", " +
               std::to_string(prev.off + prev.bytes) + ")");
    }
  }

  // Load-path telemetry only (docs/metrics.md): never feeds artifact
  // bytes. The global sink is the right scope — artifact loads happen on
  // paths (report, merge) with no ExecContext in reach.
  metrics::global_sink().add(metrics::kIoTablesMapped);
  metrics::global_sink().add(metrics::kIoBytesMapped, t->size_);
  return t;
}

ColumnType MappedTable::column_type(std::size_t ci) const {
  return columns_.at(ci).type;
}

const MappedTable::Column& MappedTable::column_at(std::size_t ci,
                                                  ColumnType wanted) const {
  const Column& col = columns_.at(ci);
  if (col.type != wanted) {
    throw JsonError("columnar artifact '" + path_ + "': column " +
                    std::to_string(ci) + " '" + names_[ci] +
                    "' is not of the requested type");
  }
  return col;
}

std::span<const double> MappedTable::f64_column(std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kF64);
  return {reinterpret_cast<const double*>(col.data), rows_};
}

std::span<const std::int64_t> MappedTable::i64_column(std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kI64);
  return {reinterpret_cast<const std::int64_t*>(col.data), rows_};
}

std::span<const std::uint64_t> MappedTable::u64_column(std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kU64);
  return {reinterpret_cast<const std::uint64_t*>(col.data), rows_};
}

std::span<const std::uint32_t> MappedTable::dict_indices(
    std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kStringDict);
  return {reinterpret_cast<const std::uint32_t*>(col.data), rows_};
}

std::span<const std::uint8_t> MappedTable::mixed_tags(std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kMixed);
  return {reinterpret_cast<const std::uint8_t*>(col.aux), rows_};
}

std::span<const std::uint64_t> MappedTable::mixed_payload(
    std::size_t ci) const {
  const Column& col = column_at(ci, ColumnType::kMixed);
  return {reinterpret_cast<const std::uint64_t*>(col.data), rows_};
}

Json MappedTable::cell(std::size_t row, std::size_t ci) const {
  const Column& col = columns_.at(ci);
  switch (col.type) {
    case ColumnType::kF64: {
      double d = 0.0;
      std::memcpy(&d, col.data + 8 * row, 8);
      return Json{d};
    }
    case ColumnType::kI64: {
      std::int64_t i = 0;
      std::memcpy(&i, col.data + 8 * row, 8);
      return Json{i};  // non-negative reads back as the unsigned kind
    }
    case ColumnType::kU64: {
      std::uint64_t u = 0;
      std::memcpy(&u, col.data + 8 * row, 8);
      return Json{u};
    }
    case ColumnType::kStringDict: {
      std::uint32_t idx = 0;
      std::memcpy(&idx, col.data + 4 * row, 4);
      return Json{dict_[idx]};
    }
    case ColumnType::kMixed: {
      std::uint64_t payload = 0;
      std::memcpy(&payload, col.data + 8 * row, 8);
      switch (static_cast<CellTag>(col.aux[row])) {
        case CellTag::kNull:
          return Json{};
        case CellTag::kFalse:
          return Json{false};
        case CellTag::kTrue:
          return Json{true};
        case CellTag::kF64: {
          double d = 0.0;
          std::memcpy(&d, &payload, 8);
          return Json{d};
        }
        case CellTag::kU64:
          return Json{payload};
        case CellTag::kI64: {
          std::int64_t i = 0;
          std::memcpy(&i, &payload, 8);
          return Json{i};
        }
        case CellTag::kString:
          return Json{dict_[static_cast<std::size_t>(payload)]};
      }
      return Json{};
    }
  }
  return Json{};
}

// ----------------------------------------------------------- materialize

study::ResultTable materialize(std::shared_ptr<const MappedTable> mapped) {
  const metrics::ScopedTimer materialize_timer{metrics::global_sink(),
                                               metrics::kIoMaterializeNs};
  trace::Tracer& tracer = trace::global_tracer();
  const trace::ScopedSpan materialize_span{
      tracer, trace::kIoVbtMaterialize,
      tracer.is_enabled(trace::kIoVbtMaterialize)
          ? file_span_ident(mapped->path())
          : 0};
  // Metadata rides the exact JSON document to_json writes (minus "rows"),
  // so the JSON reader's validation — schema, spec round-trip, shard
  // sanity — applies unchanged; the rows are then decoded column-wise.
  Json doc = mapped->metadata();
  doc.set("rows", Json::array());
  study::ResultTable table;
  try {
    table = study::ResultTable::from_json(doc);
  } catch (const JsonError& e) {
    throw JsonError("columnar artifact '" + mapped->path() +
                    "': metadata: " + e.what());
  }
  const std::size_t ncols = mapped->num_columns();
  const std::size_t nrows = mapped->num_rows();
  // Row-major decode (rows are row vectors, so this is the allocation
  // order) with the per-column type dispatch hoisted out of the cell loop.
  struct Decode {
    ColumnType type;
    const double* f64 = nullptr;
    const std::int64_t* i64 = nullptr;
    const std::uint64_t* u64 = nullptr;
    const std::uint32_t* dict_idx = nullptr;
  };
  std::vector<Decode> cols(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    cols[ci].type = mapped->column_type(ci);
    switch (cols[ci].type) {
      case ColumnType::kF64:
        cols[ci].f64 = mapped->f64_column(ci).data();
        break;
      case ColumnType::kI64:
        cols[ci].i64 = mapped->i64_column(ci).data();
        break;
      case ColumnType::kU64:
        cols[ci].u64 = mapped->u64_column(ci).data();
        break;
      case ColumnType::kStringDict:
        cols[ci].dict_idx = mapped->dict_indices(ci).data();
        break;
      case ColumnType::kMixed:
        break;  // rare; decoded through the per-cell primitive below
    }
  }
  const auto& dict = mapped->dictionary();
  table.rows.reserve(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (std::size_t ci = 0; ci < ncols; ++ci) {
      const Decode& c = cols[ci];
      switch (c.type) {
        case ColumnType::kF64:
          row.emplace_back(c.f64[r]);
          break;
        case ColumnType::kI64:
          // Non-negative values read back as the unsigned kind (the Json
          // constructor routes on sign), restoring the exact JSON kind.
          row.emplace_back(c.i64[r]);
          break;
        case ColumnType::kU64:
          row.emplace_back(c.u64[r]);
          break;
        case ColumnType::kStringDict:
          row.emplace_back(dict[c.dict_idx[r]]);
          break;
        case ColumnType::kMixed:
          row.push_back(mapped->cell(r, ci));
          break;
      }
    }
    table.rows.push_back(std::move(row));
  }
  table.backing = std::move(mapped);
  return table;
}

}  // namespace varbench::io::columnar

// Minimal, dependency-free JSON layer for experiment specs and result
// artifacts (src/study/). Design constraints, in order:
//
//   1. Lossless round-trips. Seeds are full 64-bit integers
//      (`derive_seed` outputs), so numbers keep their parsed kind:
//      unsigned, signed, or double — never silently squeezed through a
//      double. Doubles serialize with shortest-round-trip `std::to_chars`.
//   2. Deterministic bytes. Objects preserve insertion order, the writer
//      has exactly one rendering per value — equal values always produce
//      equal bytes (the shard/merge identity check diffs serialized
//      artifacts, see docs/study_api.md).
//   3. Actionable errors. Parse failures throw with line:column and
//      lookups throw with the missing key and the keys that are present.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace varbench::io {

/// Thrown on malformed documents and type/key mismatches.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type : int { kNull, kBool, kNumber, kString, kArray, kObject };
  /// Which representation a kNumber value carries. Invariant: kInt only
  /// ever holds negative values (the int64 constructor and the parser both
  /// route non-negative integers to kUint), so the kind is recoverable
  /// from the sign — the property the binary columnar encoder relies on.
  enum class NumKind : int { kDouble, kUint, kInt };

  using Array = std::vector<Json>;
  /// Insertion-ordered; keys unique (enforced by set() and the parser).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : type_{Type::kBool}, bool_{b} {}
  Json(double d) : type_{Type::kNumber}, num_kind_{NumKind::kDouble}, dbl_{d} {}
  Json(std::uint64_t u)
      : type_{Type::kNumber}, num_kind_{NumKind::kUint}, uint_{u} {}
  Json(std::int64_t i)
      : type_{Type::kNumber},
        num_kind_{i < 0 ? NumKind::kInt : NumKind::kUint} {
    if (i < 0) {
      int_ = i;
    } else {
      uint_ = static_cast<std::uint64_t>(i);
    }
  }
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
  // size_t/uint64_t are the same type on this platform; no extra overload.
  Json(std::string s) : type_{Type::kString}, str_{std::move(s)} {}
  Json(std::string_view s) : Json(std::string{s}) {}
  Json(const char* s) : Json(std::string{s}) {}
  // Paren-init: brace-init would treat the vector as a one-element
  // initializer_list<Json> (Json converts from Array) and recurse.
  Json(Array a) : type_{Type::kArray}, arr_(std::move(a)) {}
  Json(Object o) : type_{Type::kObject}, obj_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json{Object{}}; }
  [[nodiscard]] static Json array() { return Json{Array{}}; }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// The number representation; throws JsonError unless is_number().
  [[nodiscard]] NumKind number_kind() const;

  /// Checked accessors — throw JsonError naming the actual type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;      // any number kind, widened
  [[nodiscard]] std::uint64_t as_uint64() const;  // exact or throws
  [[nodiscard]] std::int64_t as_int64() const;    // exact or throws
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // ---- object interface ----
  /// Pointer to the member value, or nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] Json* find(std::string_view key);
  /// Member value; throws JsonError listing available keys when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Insert or replace, preserving first-insertion order.
  void set(std::string key, Json value);

  // ---- array interface ----
  void push_back(Json value);
  [[nodiscard]] std::size_t size() const;

  friend bool operator==(const Json& a, const Json& b);

  /// Serialize. `indent < 0` → compact one-line form; `indent >= 0` →
  /// pretty-printed with that many spaces per level. Both renderings are
  /// deterministic functions of the value.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete document (trailing garbage is an error).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  NumKind num_kind_ = NumKind::kDouble;
  double dbl_ = 0.0;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

[[nodiscard]] std::string_view to_string(Json::Type t);

/// Read an entire file; throws JsonError (with the path) on I/O failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Write `content` to `path` atomically enough for our purposes
/// (truncate + write); throws JsonError on failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace varbench::io

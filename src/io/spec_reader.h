// Strict reading of spec-style JSON objects, shared by every serializable
// spec type (StudySpec, ReportSpec, ...): every key a parser never asked
// for is an error, so typos fail loudly instead of silently running with
// defaults, and type mismatches throw with the key name and the offending
// value.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/io/json.h"

namespace varbench::io {

/// Tracks which keys of an object were consumed; call reject_unknown_keys()
/// after all reads. `domain` prefixes every error message ("spec", "report
/// spec"); `where` names the object being read ("the spec", "'params'").
class ObjectReader {
 public:
  ObjectReader(const Json& obj, std::string_view domain,
               std::string_view where);

  [[nodiscard]] const Json* find(std::string_view key);
  /// Member value; throws JsonError when absent.
  [[nodiscard]] const Json& at(std::string_view key);
  /// Call after all reads: any key never asked for is unknown.
  void reject_unknown_keys() const;

 private:
  const Json& obj_;
  std::string domain_;
  std::string where_;
  std::vector<std::string> seen_;
};

/// Typed scalar readers with actionable, domain-prefixed errors.
[[nodiscard]] std::string read_string(const Json& v, std::string_view domain,
                                      std::string_view key);
[[nodiscard]] double read_double(const Json& v, std::string_view domain,
                                 std::string_view key);
[[nodiscard]] std::size_t read_size(const Json& v, std::string_view domain,
                                    std::string_view key);
[[nodiscard]] std::vector<std::string> read_string_array(
    const Json& v, std::string_view domain, std::string_view key);

/// Array builders for the symmetric serialization path.
[[nodiscard]] Json string_array(const std::vector<std::string>& v);
[[nodiscard]] Json double_array(const std::vector<double>& v);

/// The v2 strict-tolerance reading contract (docs/study_api.md): every
/// key of `obj` must appear in `known`, otherwise throw a JsonError
/// naming the offending JSON path ("$.meta.frobnicate"), the schema being
/// read, and the fields this build knows — so producers of future
/// documents learn exactly which field an old reader cannot honor.
/// `domain` prefixes the message ("result table", "report").
void reject_unknown_fields(const Json& obj, std::string_view domain,
                           std::string_view schema, std::string_view path,
                           std::initializer_list<std::string_view> known);

}  // namespace varbench::io

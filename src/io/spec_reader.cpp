#include "src/io/spec_reader.h"

#include <algorithm>

namespace varbench::io {

ObjectReader::ObjectReader(const Json& obj, std::string_view domain,
                           std::string_view where)
    : obj_{obj}, domain_{domain}, where_{where} {
  (void)obj_.as_object();  // type check up front
}

const Json* ObjectReader::find(std::string_view key) {
  seen_.emplace_back(key);
  return obj_.find(key);
}

const Json& ObjectReader::at(std::string_view key) {
  const Json* v = find(key);
  if (v == nullptr) {
    throw JsonError(domain_ + ": missing required key '" + std::string{key} +
                    "' in " + where_);
  }
  return *v;
}

void ObjectReader::reject_unknown_keys() const {
  for (const auto& [key, value] : obj_.as_object()) {
    if (std::find(seen_.begin(), seen_.end(), key) != seen_.end()) continue;
    std::string expected;
    for (const auto& s : seen_) {
      if (!expected.empty()) expected += ", ";
      expected += "'" + s + "'";
    }
    throw JsonError(domain_ + ": unknown key '" + key + "' in " + where_ +
                    " (expected one of: " + expected + ")");
  }
}

std::string read_string(const Json& v, std::string_view domain,
                        std::string_view key) {
  if (!v.is_string()) {
    throw JsonError(std::string{domain} + ": '" + std::string{key} +
                    "' must be a string, got " + v.dump());
  }
  return v.as_string();
}

double read_double(const Json& v, std::string_view domain,
                   std::string_view key) {
  if (!v.is_number()) {
    throw JsonError(std::string{domain} + ": '" + std::string{key} +
                    "' must be a number, got " + v.dump());
  }
  return v.as_double();
}

std::size_t read_size(const Json& v, std::string_view domain,
                      std::string_view key) {
  try {
    return static_cast<std::size_t>(v.as_uint64());
  } catch (const JsonError&) {
    throw JsonError(std::string{domain} + ": '" + std::string{key} +
                    "' must be a non-negative integer, got " + v.dump());
  }
}

std::vector<std::string> read_string_array(const Json& v,
                                           std::string_view domain,
                                           std::string_view key) {
  std::vector<std::string> out;
  for (const Json& item : v.as_array()) {
    out.push_back(read_string(item, domain, key));
  }
  return out;
}

Json string_array(const std::vector<std::string>& v) {
  Json arr = Json::array();
  for (const auto& s : v) arr.push_back(Json{s});
  return arr;
}

Json double_array(const std::vector<double>& v) {
  Json arr = Json::array();
  for (const double d : v) arr.push_back(Json{d});
  return arr;
}

void reject_unknown_fields(const Json& obj, std::string_view domain,
                           std::string_view schema, std::string_view path,
                           std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : obj.as_object()) {
    bool ok = false;
    for (const std::string_view k : known) ok = ok || key == k;
    if (ok) continue;
    std::string list;
    for (const std::string_view k : known) {
      if (!list.empty()) list += ", ";
      list += "'" + std::string{k} + "'";
    }
    throw JsonError(std::string{domain} + ": unknown field '" +
                    std::string{path} + "." + key + "' (schema " +
                    std::string{schema} + " reader knows: " + list + ")");
  }
}

}  // namespace varbench::io

#include "src/stats/multi_dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"

namespace varbench::stats {

FriedmanResult friedman_test(const math::Matrix& scores) {
  const std::size_t n = scores.rows();  // datasets
  const std::size_t k = scores.cols();  // algorithms
  if (n < 2 || k < 2) {
    throw std::invalid_argument("friedman_test: need >= 2 datasets and algos");
  }
  FriedmanResult r;
  r.average_ranks.assign(k, 0.0);
  for (std::size_t d = 0; d < n; ++d) {
    // Rank within the dataset, 1 = best (highest score).
    std::vector<double> negated(k);
    for (std::size_t a = 0; a < k; ++a) negated[a] = -scores(d, a);
    const auto row_ranks = ranks(negated);
    for (std::size_t a = 0; a < k; ++a) r.average_ranks[a] += row_ranks[a];
  }
  for (double& v : r.average_ranks) v /= static_cast<double>(n);

  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  double sum_rank_sq = 0.0;
  for (const double rj : r.average_ranks) sum_rank_sq += rj * rj;
  r.chi_squared = 12.0 * nd / (kd * (kd + 1.0)) *
                  (sum_rank_sq - kd * (kd + 1.0) * (kd + 1.0) / 4.0);
  r.p_value = 1.0 - chi_squared_cdf(r.chi_squared, kd - 1.0);
  // Iman–Davenport correction (F-distributed, less conservative).
  const double denom = nd * (kd - 1.0) - r.chi_squared;
  r.iman_davenport_f =
      denom > 0.0 ? (nd - 1.0) * r.chi_squared / denom
                  : std::numeric_limits<double>::infinity();
  return r;
}

double nemenyi_critical_difference(std::size_t num_algorithms,
                                   std::size_t num_datasets) {
  // q_{0.05} values for the studentized range / sqrt(2), k = 2..10
  // (Demšar 2006, Table 5a).
  static constexpr double kQ05[] = {1.960, 2.343, 2.569, 2.728, 2.850,
                                    2.949, 3.031, 3.102, 3.164};
  if (num_algorithms < 2 || num_algorithms > 10) {
    throw std::invalid_argument(
        "nemenyi_critical_difference: k must be in [2, 10]");
  }
  if (num_datasets < 2) {
    throw std::invalid_argument("nemenyi_critical_difference: N < 2");
  }
  const double q = kQ05[num_algorithms - 2];
  const double kd = static_cast<double>(num_algorithms);
  const double nd = static_cast<double>(num_datasets);
  return q * std::sqrt(kd * (kd + 1.0) / (6.0 * nd));
}

std::vector<std::size_t> nemenyi_top_group(const FriedmanResult& friedman,
                                           std::size_t num_datasets) {
  const auto& ranks_avg = friedman.average_ranks;
  const double best =
      *std::min_element(ranks_avg.begin(), ranks_avg.end());
  const double cd =
      nemenyi_critical_difference(ranks_avg.size(), num_datasets);
  std::vector<std::size_t> group;
  for (std::size_t a = 0; a < ranks_avg.size(); ++a) {
    if (ranks_avg[a] - best <= cd) group.push_back(a);
  }
  return group;
}

ReplicabilityResult replicability_analysis(
    std::span<const double> per_dataset_p_values, double alpha) {
  if (per_dataset_p_values.empty()) {
    throw std::invalid_argument("replicability_analysis: no p-values");
  }
  ReplicabilityResult r;
  r.dataset_count = per_dataset_p_values.size();
  const double corrected = bonferroni_alpha(alpha, r.dataset_count);
  for (const double p : per_dataset_p_values) {
    const bool sig = p < corrected;
    r.significant.push_back(sig);
    if (sig) ++r.significant_count;
  }
  r.improves_on_all = r.significant_count == r.dataset_count;
  return r;
}

TestResult wilcoxon_across_datasets(std::span<const double> a,
                                    std::span<const double> b) {
  return wilcoxon_signed_rank(a, b);
}

}  // namespace varbench::stats

#include "src/stats/shapiro_wilk.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "src/stats/distributions.h"

namespace varbench::stats {

namespace {

// poly(c, k, x) = c[0] + c[1]·x + … + c[k-1]·x^{k-1}.
double poly(const double* coeffs, int k, double x) {
  double v = coeffs[0];
  double xp = 1.0;
  for (int i = 1; i < k; ++i) {
    xp *= x;
    v += coeffs[i] * xp;
  }
  return v;
}

}  // namespace

ShapiroWilkResult shapiro_wilk(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 3 || n > 5000) {
    throw std::invalid_argument("shapiro_wilk: n must be in [3, 5000]");
  }
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) {
    throw std::invalid_argument("shapiro_wilk: constant sample");
  }

  const auto an = static_cast<double>(n);
  const std::size_t n2 = n / 2;

  // Blom-approximated expected normal order statistics of the lower half;
  // m[0] belongs to the sample minimum and is the most negative.
  std::vector<double> m(n2, 0.0);
  double summ2 = 0.0;
  for (std::size_t i = 0; i < n2; ++i) {
    m[i] = normal_quantile((static_cast<double>(i + 1) - 0.375) / (an + 0.25));
    summ2 += m[i] * m[i];
  }
  summ2 *= 2.0;  // by symmetry (middle element of odd n is exactly 0)
  const double ssumm2 = std::sqrt(summ2);
  const double rsn = 1.0 / std::sqrt(an);

  // Royston's corrections to the two extreme weights (AS R94).
  static constexpr double c1[6] = {0.0,      0.221157, -0.147981,
                                   -2.07119, 4.434685, -2.706056};
  static constexpr double c2[6] = {0.0,      0.042981, -0.293762,
                                   -1.752461, 5.682633, -3.582633};

  // a[i] > 0 is applied antisymmetrically: numerator = Σ a_i (x_{(n-i)} - x_{(i+1)}).
  std::vector<double> a(n2, 0.0);
  const double a1 = poly(c1, 6, rsn) - m[0] / ssumm2;
  std::size_t i1 = 1;  // first index filled from raw (scaled) m values
  double fac = 1.0;
  if (n > 5) {
    i1 = 2;
    const double a2 = poly(c2, 6, rsn) - m[1] / ssumm2;
    fac = std::sqrt((summ2 - 2.0 * m[0] * m[0] - 2.0 * m[1] * m[1]) /
                    (1.0 - 2.0 * a1 * a1 - 2.0 * a2 * a2));
    a[0] = a1;
    a[1] = a2;
  } else if (n > 3) {
    fac = std::sqrt((summ2 - 2.0 * m[0] * m[0]) / (1.0 - 2.0 * a1 * a1));
    a[0] = a1;
  } else {  // n == 3: exact weight
    a[0] = std::numbers::sqrt2 / 2.0;
  }
  for (std::size_t i = i1; i < n2; ++i) a[i] = -m[i] / fac;

  // W = (Σ a_i (x_{(n-i)} − x_{(i+1)}))² / Σ (x_j − x̄)².
  double xbar = 0.0;
  for (const double v : sorted) xbar += v;
  xbar /= an;
  double ssq = 0.0;
  for (const double v : sorted) ssq += (v - xbar) * (v - xbar);
  double num = 0.0;
  for (std::size_t i = 0; i < n2; ++i) {
    num += a[i] * (sorted[n - 1 - i] - sorted[i]);
  }
  const double w = std::min(num * num / ssq, 1.0);

  // P-value via Royston's normalizing transformations.
  if (n == 3) {
    constexpr double pi6 = 1.90985931710274;   // 6/π
    constexpr double stqr = 1.04719755119660;  // asin(√(3/4))
    const double p = pi6 * (std::asin(std::sqrt(w)) - stqr);
    return {w, std::clamp(p, 0.0, 1.0)};
  }
  double p = 1.0;
  if (n <= 11) {
    const double gamma = -2.273 + 0.459 * an;
    const double y = -std::log(gamma - std::log1p(-w));
    const double mu = 0.5440 - 0.39978 * an + 0.025054 * an * an -
                      0.0006714 * an * an * an;
    const double sigma = std::exp(1.3822 - 0.77857 * an + 0.062767 * an * an -
                                  0.0020322 * an * an * an);
    p = 1.0 - normal_cdf((y - mu) / sigma);
  } else {
    const double ln = std::log(an);
    const double y = std::log1p(-w);
    const double mu =
        -1.5861 - 0.31082 * ln - 0.083751 * ln * ln + 0.0038915 * ln * ln * ln;
    const double sigma = std::exp(-0.4803 - 0.082676 * ln + 0.0030302 * ln * ln);
    p = 1.0 - normal_cdf((y - mu) / sigma);
  }
  return {w, std::clamp(p, 0.0, 1.0)};
}

}  // namespace varbench::stats

// Probability distributions used throughout the statistical toolkit.
// Implemented from scratch (no dependency on libstdc++ distribution
// internals) so results are bit-stable across platforms.
#pragma once

#include <cstdint>

namespace varbench::stats {

/// Standard normal probability density φ(x).
[[nodiscard]] double normal_pdf(double x);

/// Standard normal CDF Φ(x), via erfc for accuracy in the tails.
[[nodiscard]] double normal_cdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p) (Acklam's rational approximation with
/// one Halley refinement; |relative error| < 1e-15 over (0,1)).
[[nodiscard]] double normal_quantile(double p);

/// Student-t CDF with ν degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double nu);

/// Two-sided p-value for a t statistic with ν degrees of freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double nu);

/// Regularized incomplete beta function I_x(a, b).
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// log Γ(x) (Lanczos approximation).
[[nodiscard]] double log_gamma(double x);

/// Binomial PMF P[X = k] for X ~ Binomial(n, p), computed in log-space.
[[nodiscard]] double binomial_pmf(std::int64_t k, std::int64_t n, double p);

/// Binomial CDF P[X <= k].
[[nodiscard]] double binomial_cdf(std::int64_t k, std::int64_t n, double p);

/// Standard deviation of the *proportion* X/n for X ~ Binomial(n, p):
/// sqrt(p(1-p)/n). This is the paper's Fig. 2 model of test-set sampling
/// noise on an accuracy measured over n examples.
[[nodiscard]] double binomial_accuracy_std(double accuracy, double test_size);

/// Chi-squared CDF with k degrees of freedom (via incomplete gamma).
[[nodiscard]] double chi_squared_cdf(double x, double k);

/// Regularized lower incomplete gamma P(a, x).
[[nodiscard]] double incomplete_gamma_p(double a, double x);

}  // namespace varbench::stats

// Shapiro–Wilk normality test (Royston 1995, algorithm AS R94).
// The paper uses it (Appendix G, Fig. G.3) to justify the normality
// assumption on performance distributions.
#pragma once

#include <span>

namespace varbench::stats {

struct ShapiroWilkResult {
  double w_statistic = 1.0;
  double p_value = 1.0;
};

/// Valid for 3 <= n <= 5000. Throws std::invalid_argument outside that range
/// or if the sample is constant.
[[nodiscard]] ShapiroWilkResult shapiro_wilk(std::span<const double> x);

}  // namespace varbench::stats

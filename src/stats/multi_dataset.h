// Comparing algorithms across multiple datasets (paper §6):
//   - Demšar (2006): Friedman rank test + Nemenyi critical difference,
//     and Wilcoxon signed-rank across datasets. Weak for the 3-5 datasets
//     typical of ML papers.
//   - Dror et al. (2017): replicability analysis — count datasets with a
//     (Bonferroni-corrected) significant improvement; accept a method when
//     it improves on all datasets.
#pragma once

#include <span>
#include <vector>

#include "src/math/matrix.h"
#include "src/stats/tests.h"

namespace varbench::stats {

struct FriedmanResult {
  double chi_squared = 0.0;          // Friedman χ²_F statistic
  double p_value = 1.0;              // χ² approximation, k-1 dof
  double iman_davenport_f = 0.0;     // Iman–Davenport corrected statistic
  std::vector<double> average_ranks; // per algorithm (1 = best)
};

/// Friedman test on a (datasets × algorithms) score matrix, higher = better.
/// Requires >= 2 algorithms and >= 2 datasets.
[[nodiscard]] FriedmanResult friedman_test(const math::Matrix& scores);

/// Nemenyi critical difference for average ranks at alpha = 0.05:
/// CD = q_{0.05,k} · sqrt(k(k+1) / (6N)). Supports k in [2, 10].
[[nodiscard]] double nemenyi_critical_difference(std::size_t num_algorithms,
                                                 std::size_t num_datasets);

/// Algorithms whose average rank is within one critical difference of the
/// best — the "top group" that cannot be distinguished from the winner.
[[nodiscard]] std::vector<std::size_t> nemenyi_top_group(
    const FriedmanResult& friedman, std::size_t num_datasets);

struct ReplicabilityResult {
  std::size_t significant_count = 0;  // datasets with corrected p < alpha
  std::size_t dataset_count = 0;
  bool improves_on_all = false;       // the Dror et al. acceptance criterion
  std::vector<bool> significant;      // per dataset
};

/// Dror et al. (2017) counting analysis from per-dataset p-values, with
/// Bonferroni correction across datasets.
[[nodiscard]] ReplicabilityResult replicability_analysis(
    std::span<const double> per_dataset_p_values, double alpha = 0.05);

/// Wilcoxon signed-rank across datasets (Demšar's recommendation for two
/// algorithms): a_i/b_i are the per-dataset scores of algorithms A and B.
[[nodiscard]] TestResult wilcoxon_across_datasets(std::span<const double> a,
                                                  std::span<const double> b);

}  // namespace varbench::stats

// Classical hypothesis tests used in benchmark comparisons:
// t-tests, z-test, Mann–Whitney U, Wilcoxon signed-rank — plus their
// distribution-free Monte-Carlo counterparts (permutation tests), which run
// through exec::parallel_replicate on per-permutation RNG streams and are
// therefore bit-identical at every thread count (docs/determinism.md).
#pragma once

#include <cstddef>
#include <span>

#include "src/exec/exec_context.h"
#include "src/rngx/rng.h"

namespace varbench::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;  // two-sided unless stated otherwise

  friend bool operator==(const TestResult&, const TestResult&) = default;
};

/// One-sample t-test of H0: mean(x) == mu0.
[[nodiscard]] TestResult one_sample_t_test(std::span<const double> x,
                                           double mu0);

/// Welch's two-sample t-test of H0: mean(a) == mean(b) (unequal variances).
[[nodiscard]] TestResult welch_t_test(std::span<const double> a,
                                      std::span<const double> b);

/// Paired t-test of H0: mean(a - b) == 0.
[[nodiscard]] TestResult paired_t_test(std::span<const double> a,
                                       std::span<const double> b);

/// Two-sample z-test with known standard deviations.
[[nodiscard]] TestResult z_test(double mean_a, double mean_b, double sigma_a,
                                double sigma_b, std::size_t k);

/// Minimum detectable difference at level alpha for a two-sample z-test
/// over k paired measurements: z_{1-α}·√((σA²+σB²)/k) — §3.1's detectability
/// bound.
[[nodiscard]] double z_test_minimum_detectable(double sigma_a, double sigma_b,
                                               std::size_t k, double alpha);

struct MannWhitneyResult {
  double u_statistic = 0.0;   // U for sample A
  double p_value = 1.0;       // two-sided, normal approximation
  double prob_a_greater = 0.5;  // U / (nA·nB): estimate of P(A > B)
};

/// Mann–Whitney U test with tie correction (normal approximation).
/// `prob_a_greater` is the common-language effect size U/(nA·nB), the
/// quantity the paper's P(A>B) criterion builds on (Perme & Manevski 2019).
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

/// Wilcoxon signed-rank test for paired samples (normal approximation,
/// zero-differences dropped) — the Demšar (2006) recommendation discussed
/// in §6 for cross-dataset comparisons.
[[nodiscard]] TestResult wilcoxon_signed_rank(std::span<const double> a,
                                              std::span<const double> b);

/// Bonferroni-corrected significance level for m comparisons (§6).
[[nodiscard]] double bonferroni_alpha(double alpha, std::size_t m);

/// Two-sample Monte-Carlo permutation test of H0: mean(a) == mean(b).
/// `statistic` is the observed mean(a) − mean(b); `p_value` is the
/// two-sided add-one permutation p-value (1 + #{|perm| ≥ |obs|}) / (1 + R)
/// over R label reshuffles of the pooled sample. Permutations fan out
/// through exec::parallel_replicate — each permutation index owns an RNG
/// stream derived from (rng, "permutation", index), so the result is
/// bit-identical for every thread count.
[[nodiscard]] TestResult permutation_test_mean_diff(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, rngx::Rng& rng,
    std::size_t num_permutations = 10000);
/// Serial convenience overload (same bits as any thread count).
[[nodiscard]] TestResult permutation_test_mean_diff(
    std::span<const double> a, std::span<const double> b, rngx::Rng& rng,
    std::size_t num_permutations = 10000);

/// Paired-sample sign-flip permutation test of H0: mean(a − b) == 0.
/// Each permutation flips the sign of every paired difference with
/// probability 1/2 (the exact null for exchangeable pairs); p-value and
/// determinism contract as in permutation_test_mean_diff.
[[nodiscard]] TestResult paired_permutation_test(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, rngx::Rng& rng,
    std::size_t num_permutations = 10000);
/// Serial convenience overload (same bits as any thread count).
[[nodiscard]] TestResult paired_permutation_test(
    std::span<const double> a, std::span<const double> b, rngx::Rng& rng,
    std::size_t num_permutations = 10000);

}  // namespace varbench::stats

// The paper's recommended decision criterion (§4.1, Appendix C):
// probability of outperforming P(A>B), its percentile-bootstrap confidence
// interval, and the significant-and-meaningful three-zone decision.
#pragma once

#include <span>
#include <string_view>

#include "src/rngx/rng.h"
#include "src/stats/bootstrap.h"

namespace varbench::stats {

/// Community-standard threshold γ recommended by the paper (§5).
inline constexpr double kDefaultGamma = 0.75;

/// Empirical P(A>B) = (1/k)·Σ 1{a_i > b_i} over paired measurements (Eq. 9).
/// Ties count as half a success, matching the Mann–Whitney convention.
[[nodiscard]] double probability_of_outperforming(std::span<const double> a,
                                                  std::span<const double> b);

enum class ComparisonConclusion : int {
  kNotSignificant,    // H0 not rejected: CI_min <= 0.5 — could be noise alone
  kNotMeaningful,     // significant but CI_max <= gamma — too small to matter
  kSignificantAndMeaningful,  // H1 accepted: CI_min > 0.5 and CI_max > gamma
};

[[nodiscard]] std::string_view to_string(ComparisonConclusion c);

struct ProbOutperformResult {
  double p_a_greater_b = 0.5;
  ConfidenceInterval ci;
  double gamma = kDefaultGamma;
  ComparisonConclusion conclusion = ComparisonConclusion::kNotSignificant;

  [[nodiscard]] bool significant() const { return ci.lower > 0.5; }
  [[nodiscard]] bool meaningful() const { return ci.upper > gamma; }
};

/// Full recommended test: estimate P(A>B) on paired performance
/// measurements, bootstrap its CI, and decide per Appendix C.6.
/// The bootstrap resampling loop fans out through `ctx`; the result is
/// bit-identical for every `ctx.num_threads`, and the ctx-less overload is
/// the serial special case of the same computation.
[[nodiscard]] ProbOutperformResult test_probability_of_outperforming(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, rngx::Rng& rng, double gamma = kDefaultGamma,
    std::size_t num_resamples = 1000, double alpha = 0.05);
[[nodiscard]] ProbOutperformResult test_probability_of_outperforming(
    std::span<const double> a, std::span<const double> b, rngx::Rng& rng,
    double gamma = kDefaultGamma, std::size_t num_resamples = 1000,
    double alpha = 0.05);

}  // namespace varbench::stats

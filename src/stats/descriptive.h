// Descriptive statistics: means, variances, quantiles, correlations, ranks.
#pragma once

#include <span>
#include <vector>

namespace varbench::stats {

[[nodiscard]] double mean(std::span<const double> x);

/// Unbiased sample variance (divides by n-1). Returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> x);

[[nodiscard]] double stddev(std::span<const double> x);

/// Standard error of the mean: s/√n.
[[nodiscard]] double standard_error(std::span<const double> x);

[[nodiscard]] double min_value(std::span<const double> x);
[[nodiscard]] double max_value(std::span<const double> x);

/// The descriptive block report tables need, computed in two contiguous
/// passes over the span instead of five independent traversals (the
/// summary hot path on large mmap'd columns). Bit-identical to calling
/// mean/variance/stddev/min_value/max_value separately: the same
/// left-to-right accumulation, the same Σ(v−m)² second pass, the same
/// n < 2 → 0 variance and first-occurrence min/max semantics.
struct Moments {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Throws std::invalid_argument on empty input, like the scalar functions.
[[nodiscard]] Moments moments(std::span<const double> x);

/// Linear-interpolation quantile (type 7, the numpy default). q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> x, double q);

[[nodiscard]] double median(std::span<const double> x);

/// Unbiased sample covariance.
[[nodiscard]] double covariance(std::span<const double> x,
                                std::span<const double> y);

/// Pearson correlation coefficient. Returns 0 when either input is constant.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Spearman rank correlation (Pearson on mid-ranks).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

/// Mid-ranks (1-based, ties get the average rank) — the Mann–Whitney /
/// Wilcoxon building block.
[[nodiscard]] std::vector<double> ranks(std::span<const double> x);

/// Approximate standard deviation of the sample standard deviation of a
/// normal sample of size n: σ/√(2(n-1)). Used for the uncertainty bands of
/// Fig. 5 / H.4.
[[nodiscard]] double stddev_of_stddev(double sigma, std::size_t n);

/// Average pairwise Pearson correlation implied by the law of total variance:
/// given Var(mean of k draws) and Var(single draw), solves Eq. 7 for ρ.
[[nodiscard]] double implied_correlation(double var_of_mean, double var_single,
                                         std::size_t k);

}  // namespace varbench::stats

#include "src/stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "src/exec/parallel_replicate.h"
#include "src/exec/scratch.h"
#include "src/metrics/metrics.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"
#include "src/stats/resample_kernels.h"

namespace varbench::stats {

namespace {

/// The BCa interval from the resampled statistics, the observed value, and
/// the jackknife leave-one-out values. Shared by the std::function and the
/// fused-kernel overloads so both adjust quantiles with the same bits.
ConfidenceInterval bca_interval(const std::vector<double>& stats,
                                double observed, std::span<const double> loo,
                                double alpha) {
  // Bias correction z0: normal quantile of the fraction of resamples below
  // the observed statistic (ties split), clamped half a resample away from
  // 0 and 1 so a one-sided bootstrap distribution degrades to the edge of
  // the percentile interval instead of an infinite z0.
  double below = 0.0;
  for (const double s : stats) {
    if (s < observed) {
      below += 1.0;
    } else if (s == observed) {
      below += 0.5;
    }
  }
  const double total = static_cast<double>(stats.size());
  const double frac =
      std::clamp(below / total, 0.5 / total, 1.0 - 0.5 / total);
  const double z0 = normal_quantile(frac);

  // Acceleration from the jackknife skewness of the statistic.
  double accel = 0.0;
  if (loo.size() >= 2) {
    const double loo_mean = mean(loo);
    double num = 0.0;
    double den = 0.0;
    for (const double v : loo) {
      const double d = loo_mean - v;
      num += d * d * d;
      den += d * d;
    }
    if (den > 0.0) accel = num / (6.0 * std::pow(den, 1.5));
  }

  const auto adjusted_level = [&](double z_alpha) {
    const double zsum = z0 + z_alpha;
    const double denom = 1.0 - accel * zsum;
    // A denominator this small means the jackknife found pathological
    // skew; fall back to the bias-corrected-only level rather than let the
    // adjustment flip the interval.
    const double z = denom > 1e-6 ? z0 + zsum / denom : z0 + zsum;
    return normal_cdf(z);
  };
  const double lo = adjusted_level(normal_quantile(alpha / 2.0));
  const double hi = adjusted_level(normal_quantile(1.0 - alpha / 2.0));
  return ConfidenceInterval{quantile(stats, std::min(lo, hi)),
                            quantile(stats, std::max(lo, hi)), 1.0 - alpha};
}

/// Resampled statistics for the generic std::function path: same streams
/// and tag as ever, but the resample is gathered into leased per-thread
/// scratch instead of a fresh vector. The statistic sees the same values
/// in the same order, so results are bit-identical.
std::vector<double> resample_generic(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples) {
  metrics::Sink& sink = ctx.sink();
  const std::size_t n = x.size();
  return exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        sink.add(metrics::kStatsResamples);
        exec::ScratchBuffer<double> resample{n};
        if (n <= std::numeric_limits<std::uint32_t>::max()) {
          exec::ScratchBuffer<std::uint32_t> idx{n};
          kernels::fill_bootstrap_indices(resample_rng, n, idx.span());
          kernels::gather_values(x, std::span<const std::uint32_t>{idx.span()},
                                 resample.span());
        } else {
          exec::ScratchBuffer<std::uint64_t> idx{n};
          kernels::fill_bootstrap_indices(resample_rng, n, idx.span());
          kernels::gather_values(x, std::span<const std::uint64_t>{idx.span()},
                                 resample.span());
        }
        return statistic(resample.span());
      });
}

}  // namespace

std::vector<double> bootstrap_resample(std::span<const double> x,
                                       rngx::Rng& rng) {
  std::vector<double> out(x.size());
  const std::size_t n = x.size();
  if (n <= std::numeric_limits<std::uint32_t>::max()) {
    exec::ScratchBuffer<std::uint32_t> idx{n};
    kernels::fill_bootstrap_indices(rng, n, idx.span());
    kernels::gather_values(x, std::span<const std::uint32_t>{idx.span()}, out);
  } else {
    exec::ScratchBuffer<std::uint64_t> idx{n};
    kernels::fill_bootstrap_indices(rng, n, idx.span());
    kernels::gather_values(x, std::span<const std::uint64_t>{idx.span()}, out);
  }
  return out;
}

ConfidenceInterval percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("percentile_bootstrap_ci: empty");
  const auto stats = resample_generic(ctx, x, statistic, rng, num_resamples);
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval percentile_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return percentile_bootstrap_ci(exec::ExecContext::serial(), x, statistic,
                                 rng, num_resamples, alpha);
}

ConfidenceInterval percentile_bootstrap_ci(const exec::ExecContext& ctx,
                                           std::span<const double> x,
                                           ResampleStat stat, rngx::Rng& rng,
                                           std::size_t num_resamples,
                                           double alpha) {
  if (x.empty()) throw std::invalid_argument("percentile_bootstrap_ci: empty");
  (void)stat;  // kMean is the only fused statistic so far
  const auto stats =
      kernels::resample_mean_statistics(ctx, x, rng, num_resamples);
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval bca_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("bca_bootstrap_ci: empty sample");
  const double observed = statistic(x);
  // Same tag as percentile_bootstrap_ci: for the same rng state the two
  // methods evaluate the statistic on identical resamples and differ only
  // in which quantiles of that distribution they report.
  const auto stats = resample_generic(ctx, x, statistic, rng, num_resamples);

  // Generic-statistic jackknife: the leave-one-out sample is assembled in
  // leased scratch (no per-i allocation); the statistic sees the same
  // values the historical fresh-vector path produced.
  const std::size_t n = x.size();
  std::vector<double> loo;
  if (n >= 2) {
    loo.resize(n);
    exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
      exec::ScratchBuffer<double> rest{n - 1};
      const std::span<double> r = rest.span();
      for (std::size_t j = 0; j < i; ++j) r[j] = x[j];
      for (std::size_t j = i + 1; j < n; ++j) r[j - 1] = x[j];
      loo[i] = statistic(r);
    });
  }
  return bca_interval(stats, observed, loo, alpha);
}

ConfidenceInterval bca_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return bca_bootstrap_ci(exec::ExecContext::serial(), x, statistic, rng,
                          num_resamples, alpha);
}

ConfidenceInterval bca_bootstrap_ci(const exec::ExecContext& ctx,
                                    std::span<const double> x,
                                    ResampleStat stat, rngx::Rng& rng,
                                    std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("bca_bootstrap_ci: empty sample");
  (void)stat;  // kMean is the only fused statistic so far
  const double observed = mean(x);
  const auto stats =
      kernels::resample_mean_statistics(ctx, x, rng, num_resamples);
  const std::size_t n = x.size();
  std::vector<double> loo;
  if (n >= 2) {
    loo.resize(n);
    kernels::jackknife_mean_loo(ctx, x, loo);
  }
  return bca_interval(stats, observed, loo, alpha);
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("paired_percentile_bootstrap_ci: bad inputs");
  }
  metrics::Sink& sink = ctx.sink();
  const std::size_t n = a.size();
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "paired_bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        sink.add(metrics::kStatsResamples);
        // Leased per-thread buffers: re-entrant (the statistic may
        // bootstrap too — a nested lease gets its own buffer) without the
        // historical per-resample allocation.
        exec::ScratchBuffer<double> ra{n};
        exec::ScratchBuffer<double> rb{n};
        for (std::size_t j = 0; j < n; ++j) {
          const auto idx =
              static_cast<std::size_t>(resample_rng.uniform_index(n));
          ra.span()[j] = a[idx];
          rb.span()[j] = b[idx];
        }
        return statistic(ra.span(), rb.span());
      });
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return paired_percentile_bootstrap_ci(exec::ExecContext::serial(), a, b,
                                        statistic, rng, num_resamples, alpha);
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, PairedResampleStat stat, rngx::Rng& rng,
    std::size_t num_resamples, double alpha) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("paired_percentile_bootstrap_ci: bad inputs");
  }
  (void)stat;  // kWinRate is the only fused paired statistic so far
  const auto stats =
      kernels::resample_win_rate_statistics(ctx, a, b, rng, num_resamples);
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

}  // namespace varbench::stats

#include "src/stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/exec/parallel_replicate.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"

namespace varbench::stats {

std::vector<double> bootstrap_resample(std::span<const double> x,
                                       rngx::Rng& rng) {
  std::vector<double> out(x.size());
  for (auto& v : out) v = x[rng.uniform_index(x.size())];
  return out;
}

ConfidenceInterval percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("percentile_bootstrap_ci: empty");
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        const auto resample = bootstrap_resample(x, resample_rng);
        return statistic(resample);
      });
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval percentile_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return percentile_bootstrap_ci(exec::ExecContext::serial(), x, statistic,
                                 rng, num_resamples, alpha);
}

ConfidenceInterval bca_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("bca_bootstrap_ci: empty sample");
  const double observed = statistic(x);
  // Same tag as percentile_bootstrap_ci: for the same rng state the two
  // methods evaluate the statistic on identical resamples and differ only
  // in which quantiles of that distribution they report.
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        const auto resample = bootstrap_resample(x, resample_rng);
        return statistic(resample);
      });

  // Bias correction z0: normal quantile of the fraction of resamples below
  // the observed statistic (ties split), clamped half a resample away from
  // 0 and 1 so a one-sided bootstrap distribution degrades to the edge of
  // the percentile interval instead of an infinite z0.
  double below = 0.0;
  for (const double s : stats) {
    if (s < observed) {
      below += 1.0;
    } else if (s == observed) {
      below += 0.5;
    }
  }
  const double total = static_cast<double>(stats.size());
  const double frac =
      std::clamp(below / total, 0.5 / total, 1.0 - 0.5 / total);
  const double z0 = normal_quantile(frac);

  // Acceleration from the jackknife skewness of the statistic.
  const std::size_t n = x.size();
  double accel = 0.0;
  if (n >= 2) {
    std::vector<double> loo(n);
    exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
      std::vector<double> rest;
      rest.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) rest.push_back(x[j]);
      }
      loo[i] = statistic(rest);
    });
    const double loo_mean = mean(loo);
    double num = 0.0;
    double den = 0.0;
    for (const double v : loo) {
      const double d = loo_mean - v;
      num += d * d * d;
      den += d * d;
    }
    if (den > 0.0) accel = num / (6.0 * std::pow(den, 1.5));
  }

  const auto adjusted_level = [&](double z_alpha) {
    const double zsum = z0 + z_alpha;
    const double denom = 1.0 - accel * zsum;
    // A denominator this small means the jackknife found pathological
    // skew; fall back to the bias-corrected-only level rather than let the
    // adjustment flip the interval.
    const double z = denom > 1e-6 ? z0 + zsum / denom : z0 + zsum;
    return normal_cdf(z);
  };
  const double lo = adjusted_level(normal_quantile(alpha / 2.0));
  const double hi = adjusted_level(normal_quantile(1.0 - alpha / 2.0));
  return ConfidenceInterval{quantile(stats, std::min(lo, hi)),
                            quantile(stats, std::max(lo, hi)), 1.0 - alpha};
}

ConfidenceInterval bca_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return bca_bootstrap_ci(exec::ExecContext::serial(), x, statistic, rng,
                          num_resamples, alpha);
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("paired_percentile_bootstrap_ci: bad inputs");
  }
  const std::size_t n = a.size();
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "paired_bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        // Per-resample buffers: re-entrant (the statistic may bootstrap too)
        // at the cost of one allocation per resample, like the unpaired CI.
        std::vector<double> ra(n);
        std::vector<double> rb(n);
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t idx = resample_rng.uniform_index(n);
          ra[j] = a[idx];
          rb[j] = b[idx];
        }
        return statistic(ra, rb);
      });
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return paired_percentile_bootstrap_ci(exec::ExecContext::serial(), a, b,
                                        statistic, rng, num_resamples, alpha);
}

}  // namespace varbench::stats

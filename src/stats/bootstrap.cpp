#include "src/stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "src/stats/descriptive.h"

namespace varbench::stats {

std::vector<double> bootstrap_resample(std::span<const double> x,
                                       rngx::Rng& rng) {
  std::vector<double> out(x.size());
  for (auto& v : out) v = x[rng.uniform_index(x.size())];
  return out;
}

ConfidenceInterval percentile_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("percentile_bootstrap_ci: empty");
  std::vector<double> stats;
  stats.reserve(num_resamples);
  for (std::size_t i = 0; i < num_resamples; ++i) {
    const auto resample = bootstrap_resample(x, rng);
    stats.push_back(statistic(resample));
  }
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("paired_percentile_bootstrap_ci: bad inputs");
  }
  const std::size_t n = a.size();
  std::vector<double> ra(n);
  std::vector<double> rb(n);
  std::vector<double> stats;
  stats.reserve(num_resamples);
  for (std::size_t i = 0; i < num_resamples; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t idx = rng.uniform_index(n);
      ra[j] = a[idx];
      rb[j] = b[idx];
    }
    stats.push_back(statistic(ra, rb));
  }
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

}  // namespace varbench::stats

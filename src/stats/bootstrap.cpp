#include "src/stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "src/exec/parallel_replicate.h"
#include "src/stats/descriptive.h"

namespace varbench::stats {

std::vector<double> bootstrap_resample(std::span<const double> x,
                                       rngx::Rng& rng) {
  std::vector<double> out(x.size());
  for (auto& v : out) v = x[rng.uniform_index(x.size())];
  return out;
}

ConfidenceInterval percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (x.empty()) throw std::invalid_argument("percentile_bootstrap_ci: empty");
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        const auto resample = bootstrap_resample(x, resample_rng);
        return statistic(resample);
      });
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval percentile_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return percentile_bootstrap_ci(exec::ExecContext::serial(), x, statistic,
                                 rng, num_resamples, alpha);
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("paired_percentile_bootstrap_ci: bad inputs");
  }
  const std::size_t n = a.size();
  const auto stats = exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "paired_bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        // Per-resample buffers: re-entrant (the statistic may bootstrap too)
        // at the cost of one allocation per resample, like the unpaired CI.
        std::vector<double> ra(n);
        std::vector<double> rb(n);
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t idx = resample_rng.uniform_index(n);
          ra[j] = a[idx];
          rb[j] = b[idx];
        }
        return statistic(ra, rb);
      });
  return ConfidenceInterval{quantile(stats, alpha / 2.0),
                            quantile(stats, 1.0 - alpha / 2.0), 1.0 - alpha};
}

ConfidenceInterval paired_percentile_bootstrap_ci(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples, double alpha) {
  return paired_percentile_bootstrap_ci(exec::ExecContext::serial(), a, b,
                                        statistic, rng, num_resamples, alpha);
}

}  // namespace varbench::stats

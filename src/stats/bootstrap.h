// Percentile bootstrap (Efron 1982) — the paper's recommended tool for
// confidence intervals on P(A>B) (Appendix C.5), plus generic resampling.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/rngx/rng.h"

namespace varbench::stats {

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.95;  // 1 - alpha

  friend bool operator==(const ConfidenceInterval&,
                         const ConfidenceInterval&) = default;
};

/// Fused single-sample statistics the CI machinery evaluates without
/// materializing resamples (src/stats/resample_kernels.h). Prefer these
/// overloads over the std::function ones on hot paths: same bits, no
/// per-resample allocation, no indirect call in the inner loop.
enum class ResampleStat {
  kMean,
};

/// Fused paired-sample statistics, same contract as ResampleStat.
enum class PairedResampleStat {
  kWinRate,  // P(A>B) with ties counted half (probability_of_outperforming)
};

/// One bootstrap resample (with replacement, same size) of `x`.
///
/// Deprecated for hot paths: this overload returns a fresh vector per
/// call, which is exactly the allocation the index-kernel path
/// (kernels::fill_bootstrap_indices + fused gathers, or the ResampleStat
/// overloads below) exists to avoid. It now delegates to those kernels —
/// same draws, same values — and remains for callers that genuinely need
/// the materialized resample.
[[nodiscard]] std::vector<double> bootstrap_resample(std::span<const double> x,
                                                     rngx::Rng& rng);

/// Percentile-bootstrap CI of an arbitrary statistic of one sample.
/// `statistic` is evaluated on `num_resamples` bootstrap resamples; the CI is
/// the (α/2, 1−α/2) percentile pair of those evaluations.
///
/// Resample i draws from its own RNG stream derived from (one u64 drawn from
/// `rng`, i), so the CI is bit-identical for every `ctx.num_threads`; the
/// ctx-less overload is the serial special case of the same computation.
[[nodiscard]] ConfidenceInterval percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);
[[nodiscard]] ConfidenceInterval percentile_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);

/// Fused-kernel percentile CI: bit-identical to the std::function overload
/// evaluating the equivalent statistic, with the resampling loop running
/// allocation-free on the index kernels.
[[nodiscard]] ConfidenceInterval percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x, ResampleStat stat,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);

/// Bias-corrected and accelerated (BCa) bootstrap CI (Efron 1987) of an
/// arbitrary statistic of one sample. The percentile pair is adjusted by a
/// bias correction z0 (from the fraction of resampled statistics below the
/// observed one) and an acceleration constant (from the jackknife skewness
/// of the statistic), making the interval second-order accurate for skewed
/// statistics where the plain percentile interval is off-center.
///
/// Draws the same resamples as percentile_bootstrap_ci for the same `rng`
/// state (only the quantile levels differ) and has the same determinism
/// contract: bit-identical for every `ctx.num_threads`; both the resampling
/// loop and the jackknife fan out through `ctx`.
[[nodiscard]] ConfidenceInterval bca_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);
[[nodiscard]] ConfidenceInterval bca_bootstrap_ci(
    std::span<const double> x,
    const std::function<double(std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);

/// Fused-kernel BCa CI: same resamples and stream consumption as the
/// std::function overload; the jackknife runs through
/// kernels::jackknife_mean_loo (bit-identical below
/// kernels::kJackknifeLinearThreshold, linear-time above it).
[[nodiscard]] ConfidenceInterval bca_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> x, ResampleStat stat,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);

/// Percentile-bootstrap CI of a statistic of *paired* samples (a_i, b_i):
/// pairs are resampled together, preserving the pairing (Appendix C.5).
/// Same determinism contract as percentile_bootstrap_ci.
[[nodiscard]] ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);
[[nodiscard]] ConfidenceInterval paired_percentile_bootstrap_ci(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    rngx::Rng& rng, std::size_t num_resamples = 1000, double alpha = 0.05);

/// Fused-kernel paired percentile CI (tag "paired_bootstrap"): bit-
/// identical to the std::function overload evaluating the equivalent
/// paired statistic, allocation-free in steady state.
[[nodiscard]] ConfidenceInterval paired_percentile_bootstrap_ci(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, PairedResampleStat stat, rngx::Rng& rng,
    std::size_t num_resamples = 1000, double alpha = 0.05);

}  // namespace varbench::stats

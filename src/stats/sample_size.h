// Sample-size planning for the P(A>B) test via Noether's (1987) formula
// (paper Appendix C.3, Fig. C.1).
#pragma once

#include <cstddef>

namespace varbench::stats {

/// Minimum number of paired runs N to detect P(A>B) > gamma with
/// false-positive rate alpha and false-negative rate beta:
///   N >= ((Φ⁻¹(1−α) − Φ⁻¹(β)) / (√6·(½−γ)))²
/// With the paper's recommended γ=0.75, α=0.05, β=0.05 this gives N = 29.
[[nodiscard]] std::size_t noether_sample_size(double gamma, double alpha = 0.05,
                                              double beta = 0.05);

/// Statistical power (1 − β) achieved by N paired runs at threshold γ and
/// level α — the inverse view of the formula above.
[[nodiscard]] double noether_power(std::size_t n, double gamma,
                                   double alpha = 0.05);

}  // namespace varbench::stats

#include "src/stats/distributions.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace varbench::stats {

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::invalid_argument("normal_quantile: p outside [0, 1]");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley's method against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double log_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static constexpr double coeffs[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * std::numbers::pi) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Continued-fraction evaluation of the incomplete beta (Lentz's method),
// valid for x < (a+1)/(a+b+2).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0 && b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a, b must be positive");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double nu) {
  if (!(nu > 0.0)) throw std::invalid_argument("student_t_cdf: nu <= 0");
  if (t == 0.0) return 0.5;
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double nu) {
  const double x = nu / (nu + t * t);
  return incomplete_beta(nu / 2.0, 0.5, x);
}

double binomial_pmf(std::int64_t k, std::int64_t n, double p) {
  if (n < 0 || k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const auto kd = static_cast<double>(k);
  const auto nd = static_cast<double>(n);
  const double log_pmf = log_gamma(nd + 1.0) - log_gamma(kd + 1.0) -
                         log_gamma(nd - kd + 1.0) + kd * std::log(p) +
                         (nd - kd) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(std::int64_t k, std::int64_t n, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // P[X <= k] = I_{1-p}(n-k, k+1).
  return incomplete_beta(static_cast<double>(n - k), static_cast<double>(k + 1),
                         1.0 - p);
}

double binomial_accuracy_std(double accuracy, double test_size) {
  if (!(test_size > 0.0)) {
    throw std::invalid_argument("binomial_accuracy_std: test_size <= 0");
  }
  if (!(accuracy >= 0.0 && accuracy <= 1.0)) {
    throw std::invalid_argument("binomial_accuracy_std: accuracy outside [0,1]");
  }
  return std::sqrt(accuracy * (1.0 - accuracy) / test_size);
}

double incomplete_gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("incomplete_gamma_p: a <= 0");
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 3e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 3e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
  return 1.0 - q;
}

double chi_squared_cdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return incomplete_gamma_p(k / 2.0, x / 2.0);
}

}  // namespace varbench::stats

#include "src/stats/prob_outperform.h"

#include <stdexcept>

namespace varbench::stats {

double probability_of_outperforming(std::span<const double> a,
                                    std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("probability_of_outperforming: bad inputs");
  }
  double wins = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) {
      wins += 1.0;
    } else if (a[i] == b[i]) {
      wins += 0.5;
    }
  }
  return wins / static_cast<double>(a.size());
}

std::string_view to_string(ComparisonConclusion c) {
  switch (c) {
    case ComparisonConclusion::kNotSignificant:
      return "not significant";
    case ComparisonConclusion::kNotMeaningful:
      return "significant but not meaningful";
    case ComparisonConclusion::kSignificantAndMeaningful:
      return "significant and meaningful";
  }
  return "unknown";
}

ProbOutperformResult test_probability_of_outperforming(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, rngx::Rng& rng, double gamma,
    std::size_t num_resamples, double alpha) {
  ProbOutperformResult result;
  result.gamma = gamma;
  result.p_a_greater_b = probability_of_outperforming(a, b);
  // Fused win-rate kernel: same resample streams and bits as evaluating
  // probability_of_outperforming on materialized resamples, no per-
  // resample allocation (src/stats/resample_kernels.h).
  result.ci = paired_percentile_bootstrap_ci(
      ctx, a, b, PairedResampleStat::kWinRate, rng, num_resamples, alpha);
  if (!result.significant()) {
    result.conclusion = ComparisonConclusion::kNotSignificant;
  } else if (!result.meaningful()) {
    result.conclusion = ComparisonConclusion::kNotMeaningful;
  } else {
    result.conclusion = ComparisonConclusion::kSignificantAndMeaningful;
  }
  return result;
}

ProbOutperformResult test_probability_of_outperforming(
    std::span<const double> a, std::span<const double> b, rngx::Rng& rng,
    double gamma, std::size_t num_resamples, double alpha) {
  return test_probability_of_outperforming(exec::ExecContext::serial(), a, b,
                                           rng, gamma, num_resamples, alpha);
}

}  // namespace varbench::stats

// Column-contiguous resampling kernels (ROADMAP item 1 follow-up).
//
// The bootstrap/permutation machinery used to materialize a fresh
// std::vector<double> per resample and evaluate each statistic on the
// gathered copy. These kernels split that into (a) bulk index draws into
// per-thread reusable scratch (src/exec/scratch.h) and (b) fused
// gather+accumulate loops over std::span<const double> — tight, branch-
// light inner loops over contiguous data (VBT column spans qualify
// zero-copy), with no allocation in steady state.
//
// Bit-identity contract: every kernel reproduces the historical
// vector-materializing path exactly —
//   - fill_bootstrap_indices consumes rng draws in the same order as n
//     calls to Rng::uniform_index(pool) (the Lemire rejection threshold is
//     hoisted out of the loop; it depends only on `pool`, so the draw
//     sequence and accepted values are unchanged);
//   - the fused accumulators add in the same left-to-right order as the
//     statistics they replace (gather_mean == stats::mean of the gathered
//     copy, gather_win_rate == probability_of_outperforming of the
//     gathered pairs, and so on);
// so CIs, p-values, and golden report renders are byte-identical to the
// pre-kernel implementation. The one documented exception is the linear-
// time jackknife above kJackknifeLinearThreshold (see jackknife_mean_loo).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/rngx/rng.h"

namespace varbench::stats::kernels {

/// Fill `idx` with uniform indices in [0, pool), bit-identical to calling
/// `rng.uniform_index(pool)` once per element (same draws, same values) —
/// the bootstrap index-block primitive. IdxT is u32 in practice; callers
/// fall back to u64 for pools beyond 2^32-1 elements.
template <typename IdxT>
inline void fill_bootstrap_indices(rngx::Rng& rng, std::uint64_t pool,
                                   std::span<IdxT> idx) {
  if (idx.empty()) return;
  if (pool == 0) throw std::invalid_argument("uniform_index: n == 0");
  // Lemire rejection exactly as Rng::uniform_index, threshold hoisted.
  const std::uint64_t threshold = (~pool + 1) % pool;  // (2^64 - pool) % pool
  for (IdxT& v : idx) {
    std::uint64_t r = rng.next_u64();
    while (r < threshold) r = rng.next_u64();
    v = static_cast<IdxT>(r % pool);
  }
}

/// Gather x[idx[j]] into out[j] — the materializing resample, for callers
/// that still need the values (bootstrap_resample, generic statistics).
template <typename IdxT>
inline void gather_values(std::span<const double> x, std::span<const IdxT> idx,
                          std::span<double> out) {
  for (std::size_t j = 0; j < idx.size(); ++j) out[j] = x[idx[j]];
}

/// Mean of the gathered resample, fused: identical bits to
/// stats::mean(gather) — one left-to-right sum, same division.
template <typename IdxT>
[[nodiscard]] inline double gather_mean(std::span<const double> x,
                                        std::span<const IdxT> idx) {
  double sum = 0.0;
  for (const IdxT i : idx) sum += x[i];
  return sum / static_cast<double>(idx.size());
}

/// P(A>B) win rate of the gathered pairs, fused: identical bits to
/// probability_of_outperforming(gather(a), gather(b)).
template <typename IdxT>
[[nodiscard]] inline double gather_win_rate(std::span<const double> a,
                                            std::span<const double> b,
                                            std::span<const IdxT> idx) {
  double wins = 0.0;
  for (const IdxT i : idx) {
    if (a[i] > b[i]) {
      wins += 1.0;
    } else if (a[i] == b[i]) {
      wins += 0.5;
    }
  }
  return wins / static_cast<double>(idx.size());
}

/// In-place Fisher–Yates over a span: same draws and swaps as
/// Rng::shuffle of an equal vector.
template <typename T>
inline void span_shuffle(std::span<T> v, rngx::Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(v[i - 1], v[j]);
  }
}

/// mean(pooled[0, na)) - mean(pooled[na, end)) with the two fused sums the
/// permutation test has always used — same bits.
[[nodiscard]] inline double segment_mean_diff(std::span<const double> pooled,
                                              std::size_t na) {
  double sum_a = 0.0;
  for (std::size_t i = 0; i < na; ++i) sum_a += pooled[i];
  double sum_b = 0.0;
  for (std::size_t i = na; i < pooled.size(); ++i) sum_b += pooled[i];
  return sum_a / static_cast<double>(na) -
         sum_b / static_cast<double>(pooled.size() - na);
}

/// One sign-flip replicate of the paired permutation test: flips each
/// difference by a bernoulli(0.5) draw (same draw order as ever) and
/// reports whether |mean| reached `threshold`.
[[nodiscard]] inline bool signflip_mean_extreme(std::span<const double> d,
                                                double threshold,
                                                rngx::Rng& rng) {
  double sum = 0.0;
  for (const double di : d) sum += rng.bernoulli(0.5) ? di : -di;
  return std::abs(sum / static_cast<double>(d.size())) >= threshold;
}

/// Sample sizes below this use the exact quadratic jackknife (fold-left
/// sum skipping element i — bit-identical to mean() of the copied
/// leave-one-out sample at any thread count). At or above it,
/// jackknife_mean_loo switches to the linear prefix/suffix decomposition:
/// still deterministic and thread-invariant, but a different floating-
/// point association than the textbook fold, so BCa intervals over very
/// large columns may differ from the (quadratic) historical path in the
/// last ulps. Golden renders and report fixtures are far below this size.
inline constexpr std::size_t kJackknifeLinearThreshold = 4096;

/// Leave-one-out means for the BCa acceleration constant:
/// loo[i] = mean(x without element i). Parallel over `ctx`, deterministic
/// at any thread count. See kJackknifeLinearThreshold for the exact-vs-
/// linear regime split.
void jackknife_mean_loo(const exec::ExecContext& ctx,
                        std::span<const double> x, std::span<double> loo);

/// Per-resample means over `num_resamples` bootstrap resamples of `x`,
/// stream tag "bootstrap" — consumes `rng` and the per-resample streams
/// exactly like the historical percentile/BCa resampling loop.
[[nodiscard]] std::vector<double> resample_mean_statistics(
    const exec::ExecContext& ctx, std::span<const double> x, rngx::Rng& rng,
    std::size_t num_resamples);

/// Per-resample P(A>B) win rates over paired resamples of (a, b), stream
/// tag "paired_bootstrap" — consumes streams exactly like the historical
/// paired resampling loop.
[[nodiscard]] std::vector<double> resample_win_rate_statistics(
    const exec::ExecContext& ctx, std::span<const double> a,
    std::span<const double> b, rngx::Rng& rng, std::size_t num_resamples);

}  // namespace varbench::stats::kernels

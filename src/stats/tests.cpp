#include "src/stats/tests.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/exec/parallel_replicate.h"
#include "src/exec/scratch.h"
#include "src/metrics/metrics.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"
#include "src/stats/resample_kernels.h"

namespace varbench::stats {

TestResult one_sample_t_test(std::span<const double> x, double mu0) {
  if (x.size() < 2) throw std::invalid_argument("one_sample_t_test: n < 2");
  const double se = standard_error(x);
  if (se == 0.0) {
    const bool equal = mean(x) == mu0;
    return {equal ? 0.0 : std::numeric_limits<double>::infinity(),
            equal ? 1.0 : 0.0};
  }
  const double t = (mean(x) - mu0) / se;
  const auto nu = static_cast<double>(x.size() - 1);
  return {t, student_t_two_sided_p(t, nu)};
}

TestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: n < 2");
  }
  const double va = variance(a) / static_cast<double>(a.size());
  const double vb = variance(b) / static_cast<double>(b.size());
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) {
    const bool equal = mean(a) == mean(b);
    return {equal ? 0.0 : std::numeric_limits<double>::infinity(),
            equal ? 1.0 : 0.0};
  }
  const double t = (mean(a) - mean(b)) / denom;
  // Welch–Satterthwaite degrees of freedom.
  const double nu =
      (va + vb) * (va + vb) /
      (va * va / static_cast<double>(a.size() - 1) +
       vb * vb / static_cast<double>(b.size() - 1));
  return {t, student_t_two_sided_p(t, nu)};
}

TestResult paired_t_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_t_test: size mismatch");
  }
  std::vector<double> d(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) d[i] = a[i] - b[i];
  return one_sample_t_test(d, 0.0);
}

TestResult z_test(double mean_a, double mean_b, double sigma_a, double sigma_b,
                  std::size_t k) {
  if (k == 0) throw std::invalid_argument("z_test: k == 0");
  const double se =
      std::sqrt((sigma_a * sigma_a + sigma_b * sigma_b) / static_cast<double>(k));
  if (se == 0.0) {
    const bool equal = mean_a == mean_b;
    return {equal ? 0.0 : std::numeric_limits<double>::infinity(),
            equal ? 1.0 : 0.0};
  }
  const double z = (mean_a - mean_b) / se;
  return {z, 2.0 * normal_cdf(-std::abs(z))};
}

double z_test_minimum_detectable(double sigma_a, double sigma_b, std::size_t k,
                                 double alpha) {
  if (k == 0) throw std::invalid_argument("z_test_minimum_detectable: k == 0");
  const double z = normal_quantile(1.0 - alpha);
  return z * std::sqrt((sigma_a * sigma_a + sigma_b * sigma_b) /
                       static_cast<double>(k));
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (na == 0 || nb == 0) {
    throw std::invalid_argument("mann_whitney_u: empty sample");
  }
  std::vector<double> pooled;
  pooled.reserve(na + nb);
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  const auto r = ranks(pooled);
  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < na; ++i) rank_sum_a += r[i];
  const double nad = static_cast<double>(na);
  const double nbd = static_cast<double>(nb);
  const double u_a = rank_sum_a - nad * (nad + 1.0) / 2.0;

  // Tie correction for the variance of U.
  const double n = nad + nbd;
  std::vector<double> sorted(pooled);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double mu_u = nad * nbd / 2.0;
  const double var_u =
      nad * nbd / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  double p = 1.0;
  if (var_u > 0.0) {
    // Continuity correction.
    const double z = (std::abs(u_a - mu_u) - 0.5) / std::sqrt(var_u);
    p = 2.0 * normal_cdf(-std::max(z, 0.0));
  }
  return {u_a, std::min(p, 1.0), u_a / (nad * nbd)};
}

TestResult wilcoxon_signed_rank(std::span<const double> a,
                                std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("wilcoxon_signed_rank: size mismatch");
  }
  std::vector<double> abs_d;
  std::vector<int> sign_d;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // standard practice: drop zeros
    abs_d.push_back(std::abs(d));
    sign_d.push_back(d > 0.0 ? 1 : -1);
  }
  const std::size_t n = abs_d.size();
  if (n == 0) return {0.0, 1.0};
  const auto r = ranks(abs_d);
  double w_plus = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sign_d[i] > 0) w_plus += r[i];
  }
  const double nd = static_cast<double>(n);
  const double mu = nd * (nd + 1.0) / 4.0;
  // Tie correction.
  std::vector<double> sorted(abs_d);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double var =
      nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_term / 48.0;
  if (var <= 0.0) return {w_plus, 1.0};
  const double z = (std::abs(w_plus - mu) - 0.5) / std::sqrt(var);
  return {w_plus, std::min(1.0, 2.0 * normal_cdf(-std::max(z, 0.0)))};
}

double bonferroni_alpha(double alpha, std::size_t m) {
  if (m == 0) throw std::invalid_argument("bonferroni_alpha: m == 0");
  return alpha / static_cast<double>(m);
}

namespace {

/// Add-one Monte-Carlo p-value from per-permutation "at least as extreme"
/// flags — guarantees p > 0 and unbiased coverage (Phipson & Smyth 2010).
double add_one_p(const std::vector<std::uint8_t>& extreme) {
  std::size_t hits = 0;
  for (const std::uint8_t e : extreme) hits += e;
  return static_cast<double>(1 + hits) /
         static_cast<double>(1 + extreme.size());
}

}  // namespace

TestResult permutation_test_mean_diff(const exec::ExecContext& ctx,
                                      std::span<const double> a,
                                      std::span<const double> b,
                                      rngx::Rng& rng,
                                      std::size_t num_permutations) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("permutation_test_mean_diff: empty sample");
  }
  if (num_permutations == 0) {
    throw std::invalid_argument(
        "permutation_test_mean_diff: num_permutations == 0");
  }
  const double observed = mean(a) - mean(b);
  const double threshold = std::abs(observed);
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  const std::size_t na = a.size();
  metrics::Sink& sink = ctx.sink();
  const auto extreme = exec::parallel_replicate<std::uint8_t>(
      ctx, num_permutations, rng, "permutation",
      [&](std::size_t, rngx::Rng& perm_rng) -> std::uint8_t {
        sink.add(metrics::kStatsResamples);
        // Per-thread leased copy of the pool: same shuffle draws and the
        // same two fused segment sums as ever, no per-permutation vector.
        exec::ScratchBuffer<double> shuffled{pooled.size()};
        std::copy(pooled.begin(), pooled.end(), shuffled.span().begin());
        kernels::span_shuffle(shuffled.span(), perm_rng);
        const double diff = kernels::segment_mean_diff(shuffled.span(), na);
        return std::abs(diff) >= threshold ? 1 : 0;
      });
  return {observed, add_one_p(extreme)};
}

TestResult permutation_test_mean_diff(std::span<const double> a,
                                      std::span<const double> b,
                                      rngx::Rng& rng,
                                      std::size_t num_permutations) {
  return permutation_test_mean_diff(exec::ExecContext::serial(), a, b, rng,
                                    num_permutations);
}

TestResult paired_permutation_test(const exec::ExecContext& ctx,
                                   std::span<const double> a,
                                   std::span<const double> b, rngx::Rng& rng,
                                   std::size_t num_permutations) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_permutation_test: size mismatch");
  }
  if (a.empty()) {
    throw std::invalid_argument("paired_permutation_test: empty sample");
  }
  if (num_permutations == 0) {
    throw std::invalid_argument(
        "paired_permutation_test: num_permutations == 0");
  }
  std::vector<double> d(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) d[i] = a[i] - b[i];
  const double observed = mean(d);
  const double threshold = std::abs(observed);
  metrics::Sink& sink = ctx.sink();
  const auto extreme = exec::parallel_replicate<std::uint8_t>(
      ctx, num_permutations, rng, "paired_permutation",
      [&](std::size_t, rngx::Rng& perm_rng) -> std::uint8_t {
        sink.add(metrics::kStatsResamples);
        return kernels::signflip_mean_extreme(d, threshold, perm_rng) ? 1 : 0;
      });
  return {observed, add_one_p(extreme)};
}

TestResult paired_permutation_test(std::span<const double> a,
                                   std::span<const double> b, rngx::Rng& rng,
                                   std::size_t num_permutations) {
  return paired_permutation_test(exec::ExecContext::serial(), a, b, rng,
                                 num_permutations);
}

}  // namespace varbench::stats

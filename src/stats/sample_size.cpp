#include "src/stats/sample_size.h"

#include <cmath>
#include <stdexcept>

#include "src/stats/distributions.h"

namespace varbench::stats {

std::size_t noether_sample_size(double gamma, double alpha, double beta) {
  if (!(gamma > 0.5 && gamma < 1.0)) {
    throw std::invalid_argument("noether_sample_size: gamma must be in (0.5, 1)");
  }
  if (!(alpha > 0.0 && alpha < 1.0 && beta > 0.0 && beta < 1.0)) {
    throw std::invalid_argument("noether_sample_size: alpha/beta in (0, 1)");
  }
  const double za = normal_quantile(1.0 - alpha);
  const double zb = normal_quantile(beta);
  const double denom = std::sqrt(6.0) * (0.5 - gamma);
  const double n = (za - zb) / denom;
  return static_cast<std::size_t>(std::ceil(n * n));
}

double noether_power(std::size_t n, double gamma, double alpha) {
  if (n == 0) throw std::invalid_argument("noether_power: n == 0");
  if (!(gamma > 0.5 && gamma < 1.0)) {
    throw std::invalid_argument("noether_power: gamma must be in (0.5, 1)");
  }
  const double za = normal_quantile(1.0 - alpha);
  // Invert N = ((za - zb)/(√6·(γ-½)))² for zb, then β = Φ(zb).
  const double zb =
      za - std::sqrt(static_cast<double>(n)) * std::sqrt(6.0) * (gamma - 0.5);
  return 1.0 - normal_cdf(zb);
}

}  // namespace varbench::stats

#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace varbench::stats {

double mean(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("mean: empty input");
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("variance: empty input");
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (const double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double standard_error(std::span<const double> x) {
  return stddev(x) / std::sqrt(static_cast<double>(x.size()));
}

double min_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

Moments moments(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("moments: empty input");
  double sum = 0.0;
  double mn = x[0];
  double mx = x[0];
  for (const double v : x) {
    sum += v;
    if (v < mn) mn = v;
    if (mx < v) mx = v;
  }
  Moments m;
  m.count = x.size();
  m.mean = sum / static_cast<double>(x.size());
  if (x.size() >= 2) {
    double s = 0.0;
    for (const double v : x) s += (v - m.mean) * (v - m.mean);
    m.variance = s / static_cast<double>(x.size() - 1);
  }
  m.stddev = std::sqrt(m.variance);
  m.min = mn;
  m.max = mx;
  return m;
}

double quantile(std::span<const double> x, double q) {
  if (x.empty()) throw std::invalid_argument("quantile: empty input");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile: q outside [0, 1]");
  }
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double covariance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("covariance: size mismatch");
  }
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(x, y) / (sx * sy);
}

std::vector<double> ranks(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Tied block [i, j]: everyone gets the average 1-based rank.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("spearman: size mismatch");
  }
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

double stddev_of_stddev(double sigma, std::size_t n) {
  if (n < 2) return 0.0;
  return sigma / std::sqrt(2.0 * static_cast<double>(n - 1));
}

double implied_correlation(double var_of_mean, double var_single,
                           std::size_t k) {
  // Eq. 7: Var(mean_k) = V/k + (k-1)/k · ρ · V  ⇒  ρ = (k·Var(mean_k)/V − 1)/(k−1)
  if (k < 2 || var_single <= 0.0) return 0.0;
  const auto kd = static_cast<double>(k);
  const double rho = (kd * var_of_mean / var_single - 1.0) / (kd - 1.0);
  return std::clamp(rho, -1.0, 1.0);
}

}  // namespace varbench::stats

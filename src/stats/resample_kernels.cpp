#include "src/stats/resample_kernels.h"

#include <limits>

#include "src/exec/parallel_for.h"
#include "src/exec/parallel_replicate.h"
#include "src/exec/scratch.h"
#include "src/metrics/metrics.h"

namespace varbench::stats::kernels {

namespace {

/// Pools fit u32 indices in every realistic table; the u64 fallback keeps
/// the kernels correct for columns beyond 2^32-1 elements.
[[nodiscard]] bool fits_u32(std::size_t pool) {
  return pool <= std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

void jackknife_mean_loo(const exec::ExecContext& ctx,
                        std::span<const double> x, std::span<double> loo) {
  const std::size_t n = x.size();
  if (n < 2) return;  // accel is 0 for degenerate samples; caller's guard
  if (n < kJackknifeLinearThreshold) {
    // Exact regime: fold-left sum skipping element i — the same
    // association as summing the copied leave-one-out sample.
    exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) sum += x[j];
      }
      loo[i] = sum / static_cast<double>(n - 1);
    });
    return;
  }
  // Linear regime: loo[i] = (prefix[i] + suffix[i+1]) / (n-1). The two
  // passes are serial folds, so the result is independent of thread count.
  exec::ScratchBuffer<double> prefix_buf{n + 1};
  exec::ScratchBuffer<double> suffix_buf{n + 1};
  const std::span<double> prefix = prefix_buf.span();
  const std::span<double> suffix = suffix_buf.span();
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i];
  suffix[n] = 0.0;
  for (std::size_t i = n; i > 0; --i) suffix[i - 1] = x[i - 1] + suffix[i];
  exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
    loo[i] = (prefix[i] + suffix[i + 1]) / static_cast<double>(n - 1);
  });
}

std::vector<double> resample_mean_statistics(const exec::ExecContext& ctx,
                                             std::span<const double> x,
                                             rngx::Rng& rng,
                                             std::size_t num_resamples) {
  metrics::Sink& sink = ctx.sink();
  const std::size_t n = x.size();
  if (fits_u32(n)) {
    return exec::parallel_replicate<double>(
        ctx, num_resamples, rng, "bootstrap",
        [&](std::size_t, rngx::Rng& resample_rng) {
          sink.add(metrics::kStatsResamples);
          exec::ScratchBuffer<std::uint32_t> idx{n};
          fill_bootstrap_indices(resample_rng, n, idx.span());
          return gather_mean(x, std::span<const std::uint32_t>{idx.span()});
        });
  }
  return exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        sink.add(metrics::kStatsResamples);
        exec::ScratchBuffer<std::uint64_t> idx{n};
        fill_bootstrap_indices(resample_rng, n, idx.span());
        return gather_mean(x, std::span<const std::uint64_t>{idx.span()});
      });
}

std::vector<double> resample_win_rate_statistics(const exec::ExecContext& ctx,
                                                 std::span<const double> a,
                                                 std::span<const double> b,
                                                 rngx::Rng& rng,
                                                 std::size_t num_resamples) {
  metrics::Sink& sink = ctx.sink();
  const std::size_t n = a.size();
  if (fits_u32(n)) {
    return exec::parallel_replicate<double>(
        ctx, num_resamples, rng, "paired_bootstrap",
        [&](std::size_t, rngx::Rng& resample_rng) {
          sink.add(metrics::kStatsResamples);
          exec::ScratchBuffer<std::uint32_t> idx{n};
          fill_bootstrap_indices(resample_rng, n, idx.span());
          return gather_win_rate(a, b,
                                 std::span<const std::uint32_t>{idx.span()});
        });
  }
  return exec::parallel_replicate<double>(
      ctx, num_resamples, rng, "paired_bootstrap",
      [&](std::size_t, rngx::Rng& resample_rng) {
        sink.add(metrics::kStatsResamples);
        exec::ScratchBuffer<std::uint64_t> idx{n};
        fill_bootstrap_indices(resample_rng, n, idx.span());
        return gather_win_rate(a, b,
                               std::span<const std::uint64_t>{idx.span()});
      });
}

}  // namespace varbench::stats::kernels

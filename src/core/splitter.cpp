#include "src/core/splitter.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace varbench::core {

namespace {

std::vector<std::size_t> out_of_bootstrap_rows(std::size_t pool_size,
                                               std::span<const std::size_t> in_bag) {
  std::vector<bool> taken(pool_size, false);
  for (const std::size_t i : in_bag) taken[i] = true;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pool_size; ++i) {
    if (!taken[i]) out.push_back(i);
  }
  return out;
}

}  // namespace

Split OutOfBootstrapSplitter::split(const ml::Dataset& pool,
                                    rngx::Rng& rng) const {
  if (pool.empty()) throw std::invalid_argument("OOB split: empty pool");
  Split s;
  if (stratified_) {
    if (pool.kind != ml::TaskKind::kClassification) {
      throw std::invalid_argument("OOB split: stratified needs classification");
    }
    const auto by_class = ml::indices_by_class(pool);
    const std::size_t per_class_train =
        train_size_ == 0 ? 0 : train_size_ / by_class.size();
    for (const auto& members : by_class) {
      if (members.empty()) continue;
      const std::size_t n_train =
          per_class_train == 0 ? members.size() : per_class_train;
      for (std::size_t j = 0; j < n_train; ++j) {
        s.train.push_back(members[rng.uniform_index(members.size())]);
      }
    }
  } else {
    const std::size_t n_train = train_size_ == 0 ? pool.size() : train_size_;
    s.train = rng.sample_with_replacement(pool.size(), n_train);
  }
  auto oob = out_of_bootstrap_rows(pool.size(), s.train);
  if (oob.empty()) {
    throw std::runtime_error("OOB split: no out-of-bootstrap rows left");
  }
  if (test_size_ != 0 && test_size_ < oob.size()) {
    rng.shuffle(oob);
    oob.resize(test_size_);
  }
  s.test = std::move(oob);
  return s;
}

FixedHoldoutSplitter::FixedHoldoutSplitter(double train_ratio)
    : train_ratio_{train_ratio} {
  if (!(train_ratio > 0.0 && train_ratio < 1.0)) {
    throw std::invalid_argument("FixedHoldoutSplitter: ratio outside (0, 1)");
  }
}

Split FixedHoldoutSplitter::split(const ml::Dataset& pool,
                                  rngx::Rng& rng) const {
  (void)rng;  // deliberately deterministic
  if (pool.size() < 2) throw std::invalid_argument("fixed split: pool too small");
  const auto n_train = static_cast<std::size_t>(
      train_ratio_ * static_cast<double>(pool.size()));
  Split s;
  s.train.resize(std::max<std::size_t>(n_train, 1));
  std::iota(s.train.begin(), s.train.end(), std::size_t{0});
  for (std::size_t i = s.train.size(); i < pool.size(); ++i) {
    s.test.push_back(i);
  }
  return s;
}

ShuffleSplitter::ShuffleSplitter(double train_ratio)
    : train_ratio_{train_ratio} {
  if (!(train_ratio > 0.0 && train_ratio < 1.0)) {
    throw std::invalid_argument("ShuffleSplitter: ratio outside (0, 1)");
  }
}

Split ShuffleSplitter::split(const ml::Dataset& pool, rngx::Rng& rng) const {
  if (pool.size() < 2) throw std::invalid_argument("shuffle split: pool too small");
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const auto n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(train_ratio_ *
                                  static_cast<double>(pool.size())));
  Split s;
  s.train.assign(order.begin(), order.begin() + n_train);
  s.test.assign(order.begin() + n_train, order.end());
  return s;
}

std::vector<Split> cross_validation_folds(const ml::Dataset& pool,
                                          std::size_t k, rngx::Rng& rng) {
  if (k < 2 || pool.size() < k) {
    throw std::invalid_argument("cross_validation_folds: bad k");
  }
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<Split> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t lo = f * pool.size() / k;
    const std::size_t hi = (f + 1) * pool.size() / k;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i >= lo && i < hi) {
        folds[f].test.push_back(order[i]);
      } else {
        folds[f].train.push_back(order[i]);
      }
    }
  }
  return folds;
}

std::pair<ml::Dataset, ml::Dataset> materialize(const ml::Dataset& pool,
                                                const Split& s) {
  return {ml::subset(pool, s.train), ml::subset(pool, s.test)};
}

}  // namespace varbench::core

// The learning pipeline abstraction of §2.1 and the complete-pipeline runner
// P(S_tv) = Opt(S_tv, HOpt(S_tv)): split → tune → retrain → measure.
#pragma once

#include <atomic>
#include <memory>
#include <string_view>

#include "src/core/splitter.h"
#include "src/exec/exec_context.h"
#include "src/hpo/hpo.h"
#include "src/ml/dataset.h"
#include "src/ml/metrics.h"
#include "src/rngx/variation.h"

namespace varbench::core {

/// A trainable, hyperparameter-configurable learning procedure Opt(S_t, λ; ξO)
/// together with its evaluation metric (oriented so higher is better).
class LearningPipeline {
 public:
  virtual ~LearningPipeline() = default;
  LearningPipeline() = default;
  LearningPipeline(const LearningPipeline&) = delete;
  LearningPipeline& operator=(const LearningPipeline&) = delete;

  /// Train on `train` with hyperparameters λ under seeds ξO, evaluate on
  /// `test`. Returns the performance measure R̂e (higher is better).
  [[nodiscard]] virtual double train_and_evaluate(
      const ml::Dataset& train, const ml::Dataset& test,
      const hpo::ParamPoint& lambda,
      const rngx::VariationSeeds& seeds) const = 0;

  [[nodiscard]] virtual const hpo::SearchSpace& search_space() const = 0;

  /// Pre-selected reasonable defaults (Appendix D's "default" columns).
  [[nodiscard]] virtual hpo::ParamPoint default_params() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual ml::Metric metric() const = 0;
};

/// Counts Opt() invocations — the unit of the paper's O(k·T) vs O(k+T)
/// compute comparison (Fig. 4). Every HPO trial and every final retraining
/// is one fit. Atomic because HPO trials may now evaluate concurrently.
struct FitCounter {
  std::atomic<std::size_t> fits{0};
};

struct HpoRunConfig {
  const hpo::HpoAlgorithm* algorithm = nullptr;  // nullptr → defaults, no HPO
  std::size_t budget = 50;        // T: number of HPO trials
  double validation_fraction = 0.25;  // inner S_t / S_v split of S_tv
  exec::ExecContext exec;         // fan-out for independent trial evaluations
};

/// HOpt(S_tv; ξO, ξH): tune hyperparameters on an inner train/valid split of
/// `trainvalid`. The inner split and all algorithm stochasticity come from
/// the ξH stream. Returns λ̂*.
[[nodiscard]] hpo::ParamPoint run_hpo(const LearningPipeline& pipeline,
                                      const ml::Dataset& trainvalid,
                                      const HpoRunConfig& config,
                                      const rngx::VariationSeeds& seeds,
                                      FitCounter* counter = nullptr);

/// One complete benchmark measurement (Eq. 5): split the pool with the ξO
/// data-split stream, run HOpt (or take defaults), retrain on the full
/// S_tv, and return R̂e(h*, S_o).
[[nodiscard]] double run_pipeline_once(const LearningPipeline& pipeline,
                                       const ml::Dataset& pool,
                                       const Splitter& splitter,
                                       const HpoRunConfig& config,
                                       const rngx::VariationSeeds& seeds,
                                       FitCounter* counter = nullptr);

/// As run_pipeline_once but with externally supplied hyperparameters (the
/// biased-estimator path where HOpt ran once beforehand).
[[nodiscard]] double measure_with_params(const LearningPipeline& pipeline,
                                         const ml::Dataset& pool,
                                         const Splitter& splitter,
                                         const hpo::ParamPoint& lambda,
                                         const rngx::VariationSeeds& seeds,
                                         FitCounter* counter = nullptr);

}  // namespace varbench::core

#include "src/core/variance_study.h"

#include <stdexcept>

#include "src/exec/parallel_replicate.h"
#include "src/stats/descriptive.h"

namespace varbench::core {

double VarianceStudyResult::bootstrap_std() const {
  for (const auto& row : rows) {
    if (row.source == rngx::VariationSource::kDataSplit) return row.stddev;
  }
  throw std::logic_error("bootstrap_std: no data-split row in study");
}

namespace {

SourceVariance summarize(rngx::VariationSource source, std::string label,
                         std::vector<double> measures) {
  SourceVariance row;
  row.source = source;
  row.label = std::move(label);
  // A shard whose slice of this group is empty still yields a (rowless)
  // result; statistics only mean something on the merged whole.
  row.mean = measures.empty() ? 0.0 : stats::mean(measures);
  row.stddev = measures.empty() ? 0.0 : stats::stddev(measures);
  row.measures = std::move(measures);
  return row;
}

}  // namespace

VarianceStudyResult run_variance_study(const LearningPipeline& pipeline,
                                       const ml::Dataset& pool,
                                       const Splitter& splitter,
                                       const VarianceStudyConfig& config,
                                       rngx::Rng& master) {
  if (config.repetitions < 2) {
    throw std::invalid_argument("run_variance_study: repetitions < 2");
  }
  if (config.shard_count == 0 || config.shard_index >= config.shard_count) {
    throw std::invalid_argument(
        "run_variance_study: shard " + std::to_string(config.shard_index) +
        "/" + std::to_string(config.shard_count) +
        " (need shard_index < shard_count, shard_count >= 1)");
  }
  const auto slice = [&](std::size_t reps) {
    return exec::shard_subrange(reps, config.shard_index, config.shard_count);
  };
  VarianceStudyResult result;
  const rngx::VariationSeeds base;  // all seeds fixed to defaults
  const hpo::ParamPoint defaults = pipeline.default_params();

  struct ProbedSource {
    rngx::VariationSource source;
    const char* label;
  };
  static constexpr ProbedSource kProbes[] = {
      {rngx::VariationSource::kDataSplit, "Data (bootstrap)"},
      {rngx::VariationSource::kDataAugment, "Data augment"},
      {rngx::VariationSource::kDataOrder, "Data order"},
      {rngx::VariationSource::kWeightInit, "Weights init"},
      {rngx::VariationSource::kDropout, "Dropout"},
  };

  for (const auto& probe : kProbes) {
    auto measures = exec::parallel_replicate_range<double>(
        config.exec, slice(config.repetitions), master,
        rngx::to_string(probe.source), [&](std::size_t, rngx::Rng& rng) {
          const auto seeds = base.with_randomized(probe.source, rng);
          return measure_with_params(pipeline, pool, splitter, defaults, seeds);
        });
    result.rows.push_back(
        summarize(probe.source, probe.label, std::move(measures)));
  }

  if (config.include_numerical_noise) {
    // All seeds fixed; any remaining fluctuation is "numerical noise".
    auto measures = exec::parallel_replicate_range<double>(
        config.exec, slice(config.repetitions), master, "numerical_noise",
        [&](std::size_t, rngx::Rng&) {
          return measure_with_params(pipeline, pool, splitter, defaults, base);
        });
    result.rows.push_back(summarize(rngx::VariationSource::kNumerical,
                                    "Numerical noise", std::move(measures)));
  }

  // ξH probes: independent HOpt runs with all ξO fixed; each run's best λ̂*
  // is then measured once under the fixed ξO.
  for (const auto& algo_name : config.hpo_algorithms) {
    const auto algorithm = hpo::make_hpo_algorithm(algo_name);
    HpoRunConfig hpo_cfg;
    hpo_cfg.algorithm = algorithm.get();
    hpo_cfg.budget = config.hpo_budget;
    hpo_cfg.validation_fraction = config.validation_fraction;
    // The repetition loop owns the hardware; HOpt's trial loop stays serial
    // inside each repetition to avoid oversubscription.
    hpo_cfg.exec = exec::ExecContext::serial();
    auto measures = exec::parallel_replicate_range<double>(
        config.exec, slice(config.hpo_repetitions), master, algo_name,
        [&](std::size_t, rngx::Rng& rng) {
          const auto seeds =
              base.with_randomized(rngx::VariationSource::kHpo, rng);
          auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
          const Split s = splitter.split(pool, split_rng);
          const auto [trainvalid, test] = materialize(pool, s);
          const auto lambda = run_hpo(pipeline, trainvalid, hpo_cfg, seeds);
          return pipeline.train_and_evaluate(trainvalid, test, lambda, seeds);
        });
    result.rows.push_back(summarize(rngx::VariationSource::kHpo,
                                    std::string{algorithm->name()},
                                    std::move(measures)));
  }
  return result;
}

}  // namespace varbench::core

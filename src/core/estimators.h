// The paper's two estimators of the expected empirical risk µ = R̂_P (§3.2):
//
//   IdealEst(k)        — Algorithm 1: every measurement re-randomizes all of
//                        ξ = ξO ∪ ξH, including an independent HOpt run.
//                        Unbiased; costs O(k·T) fits.
//   FixHOptEst(k, ·)   — Algorithm 2: HOpt runs once; the k measurements
//                        re-randomize only a chosen subset of ξO.
//                        Biased; costs O(k+T) fits. The paper's key result:
//                        randomizing MORE sources (All ⊃ Data ⊃ Init)
//                        decorrelates measurements and shrinks the variance.
#pragma once

#include <string_view>
#include <vector>

#include "src/core/pipeline.h"
#include "src/exec/parallel_replicate.h"
#include "src/rngx/variation.h"

namespace varbench::core {

/// Which subset of ξO the biased estimator re-randomizes between
/// measurements (Fig. 5's FixHOptEst(k, Init/Data/All) variants).
enum class RandomizeSubset : int {
  kInit,  // weight initialization only — today's predominant practice
  kData,  // bootstrap data split only
  kAll,   // every ξO source (split, order, augment, init, dropout)
};

[[nodiscard]] std::string_view to_string(RandomizeSubset subset);

/// Measurements and summary statistics returned by either estimator.
struct EstimatorResult {
  std::vector<double> measures;  // the k performance measures p_i
  double mean = 0.0;             // µ̂(k) or µ̃(k)
  double stddev = 0.0;           // σ̂(k) or σ̃(k)
  std::size_t fits = 0;          // total Opt() invocations

  [[nodiscard]] std::size_t k() const noexcept { return measures.size(); }
};

/// Algorithm 1 (IdealEst). Requires O(k·(T+1)) fits.
///
/// The k measurements are independent given per-index RNG streams; `ctx`
/// fans them out with the usual thread-count-invariance guarantee, and
/// `range` restricts the run to the global measurement indices
/// [range.begin, range.end) of a k-measurement estimate (shard execution:
/// the subrange's measures are bit-identical to the corresponding slice of
/// the full run). Exactly one u64 is drawn from `master` regardless of k,
/// range, and thread count.
[[nodiscard]] EstimatorResult ideal_estimator(
    const exec::ExecContext& ctx, const LearningPipeline& pipeline,
    const ml::Dataset& pool, const Splitter& splitter, const HpoRunConfig& hpo,
    std::size_t k, exec::IndexRange range, rngx::Rng& master);

[[nodiscard]] EstimatorResult ideal_estimator(
    const exec::ExecContext& ctx, const LearningPipeline& pipeline,
    const ml::Dataset& pool, const Splitter& splitter, const HpoRunConfig& hpo,
    std::size_t k, rngx::Rng& master);

/// Serial convenience — the same computation with no fan-out.
[[nodiscard]] EstimatorResult ideal_estimator(const LearningPipeline& pipeline,
                                              const ml::Dataset& pool,
                                              const Splitter& splitter,
                                              const HpoRunConfig& hpo,
                                              std::size_t k,
                                              rngx::Rng& master);

/// Algorithm 2 (FixHOptEst). Requires O(k+T) fits. `subset` selects which
/// ξO sources are re-randomized between the k measurements. Stage 1 (the
/// single HOpt fixing λ̂*) always runs in full — shard runs repeat it — so
/// that every shard measures against the same λ̂*; `range` then restricts
/// stage 2 exactly as for ideal_estimator.
[[nodiscard]] EstimatorResult fix_hopt_estimator(
    const exec::ExecContext& ctx, const LearningPipeline& pipeline,
    const ml::Dataset& pool, const Splitter& splitter, const HpoRunConfig& hpo,
    std::size_t k, RandomizeSubset subset, exec::IndexRange range,
    rngx::Rng& master);

[[nodiscard]] EstimatorResult fix_hopt_estimator(
    const exec::ExecContext& ctx, const LearningPipeline& pipeline,
    const ml::Dataset& pool, const Splitter& splitter, const HpoRunConfig& hpo,
    std::size_t k, RandomizeSubset subset, rngx::Rng& master);

/// Serial convenience — the same computation with no fan-out.
[[nodiscard]] EstimatorResult fix_hopt_estimator(
    const LearningPipeline& pipeline, const ml::Dataset& pool,
    const Splitter& splitter, const HpoRunConfig& hpo, std::size_t k,
    RandomizeSubset subset, rngx::Rng& master);

/// Theoretical fit-cost of each estimator (Fig. 4's O(k·T) vs O(k+T)),
/// used to derive the paper's 51× compute-saving claim.
[[nodiscard]] std::size_t ideal_estimator_cost(std::size_t k, std::size_t t);
[[nodiscard]] std::size_t fix_hopt_estimator_cost(std::size_t k, std::size_t t);

/// Variance of the biased estimator's mean from Eq. 7:
///   Var(µ̃(k)|ξ) = V/k + (k−1)/k·ρ·V
[[nodiscard]] double biased_estimator_variance(double var_single, double rho,
                                               std::size_t k);

/// Mean squared error decomposition of Eq. 8: Var(µ̃(k)|ξ) + bias².
[[nodiscard]] double biased_estimator_mse(double var_single, double rho,
                                          double bias, std::size_t k);

}  // namespace varbench::core

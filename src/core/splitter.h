// Data-splitting strategies sp(S): out-of-bootstrap (the paper's
// recommendation, Appendix B), k-fold cross-validation, and the fixed
// held-out split the paper argues against.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/ml/dataset.h"
#include "src/rngx/rng.h"

namespace varbench::core {

/// Index-based split of a dataset pool into train(+valid) and test parts.
struct Split {
  std::vector<std::size_t> train;  // S_tv: may contain duplicates (bootstrap)
  std::vector<std::size_t> test;   // S_o: never overlaps the train *source* rows
};

class Splitter {
 public:
  virtual ~Splitter() = default;
  Splitter() = default;
  Splitter(const Splitter&) = delete;
  Splitter& operator=(const Splitter&) = delete;

  /// Draw one split of `pool`; all randomness comes from `rng`
  /// (the ξO data-split stream).
  [[nodiscard]] virtual Split split(const ml::Dataset& pool,
                                    rngx::Rng& rng) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Bootstrap the train set (sampling with replacement) and test on the
/// out-of-bootstrap rows (Efron 1979; Hothorn et al. 2005). Optionally
/// stratified per class (the CIFAR10 protocol of Appendix D.1).
class OutOfBootstrapSplitter final : public Splitter {
 public:
  /// `train_size` 0 → |pool| samples drawn with replacement.
  /// `test_size` 0 → all out-of-bootstrap rows.
  OutOfBootstrapSplitter(std::size_t train_size = 0, std::size_t test_size = 0,
                         bool stratified = false)
      : train_size_{train_size}, test_size_{test_size}, stratified_{stratified} {}

  [[nodiscard]] Split split(const ml::Dataset& pool,
                            rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "out_of_bootstrap";
  }

 private:
  std::size_t train_size_;
  std::size_t test_size_;
  bool stratified_;
};

/// The classic fixed held-out split: the first ⌈ratio·n⌉ rows train, the rest
/// test, independent of `rng`. Models the "same test set for everyone"
/// design the paper critiques (§3.1).
class FixedHoldoutSplitter final : public Splitter {
 public:
  explicit FixedHoldoutSplitter(double train_ratio = 0.8);
  [[nodiscard]] Split split(const ml::Dataset& pool,
                            rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "fixed_holdout";
  }

 private:
  double train_ratio_;
};

/// Random (shuffled) train/test split without replacement.
class ShuffleSplitter final : public Splitter {
 public:
  explicit ShuffleSplitter(double train_ratio = 0.8);
  [[nodiscard]] Split split(const ml::Dataset& pool,
                            rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "shuffle_split";
  }

 private:
  double train_ratio_;
};

/// k-fold cross-validation fold list (all folds at once; discussed and
/// compared against out-of-bootstrap in Appendix B).
[[nodiscard]] std::vector<Split> cross_validation_folds(const ml::Dataset& pool,
                                                        std::size_t k,
                                                        rngx::Rng& rng);

/// Materialize the two datasets of a split.
[[nodiscard]] std::pair<ml::Dataset, ml::Dataset> materialize(
    const ml::Dataset& pool, const Split& s);

}  // namespace varbench::core

// The §2.2 variance study: measure the performance fluctuation induced by
// each variation source in isolation, holding every other source fixed —
// the machinery behind Fig. 1 and the normality study of Fig. G.3.
#pragma once

#include <string>
#include <vector>

#include "src/core/estimators.h"
#include "src/core/pipeline.h"
#include "src/exec/exec_context.h"

namespace varbench::core {

struct SourceVariance {
  rngx::VariationSource source = rngx::VariationSource::kDataSplit;
  std::string label;                // display label ("Data (bootstrap)", …)
  std::vector<double> measures;     // raw performance measures
  double stddev = 0.0;
  double mean = 0.0;
};

struct VarianceStudyConfig {
  std::size_t repetitions = 50;  // paper: 200 per source
  // HPO variance probes (the ξH rows of Fig. 1): per algorithm name,
  // `hpo_repetitions` independent HOpt runs with everything else fixed.
  std::vector<std::string> hpo_algorithms;  // e.g. {"random_search", ...}
  std::size_t hpo_repetitions = 10;         // paper: 20
  std::size_t hpo_budget = 30;              // paper: 200 trials
  double validation_fraction = 0.25;
  bool include_numerical_noise = true;
  // Repetitions are independent given per-index RNG streams; the study result
  // is bit-identical for every num_threads (see docs/determinism.md).
  exec::ExecContext exec;
  // Shard execution (docs/study_api.md): compute only the contiguous slice
  // shard_subrange(repetitions, shard_index, shard_count) of every
  // repetition loop (and likewise of the hpo_repetitions loops). Because
  // per-repetition RNG streams are keyed by the global repetition index,
  // each row's measures are bit-identical to the corresponding slice of the
  // unsharded run; concatenating the slices of all shards reconstructs it
  // exactly. Default 0/1 = the whole study.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

struct VarianceStudyResult {
  std::vector<SourceVariance> rows;

  /// The bootstrap (data-split) standard deviation — Fig. 1's normalizer.
  [[nodiscard]] double bootstrap_std() const;
};

/// Probe each ξO source (and numerical noise) with default hyperparameters:
/// for each source, re-randomize only that source `repetitions` times and
/// record the performance distribution. Then probe each requested HPO
/// algorithm: re-run HOpt with fresh ξH while ξO stays fixed.
[[nodiscard]] VarianceStudyResult run_variance_study(
    const LearningPipeline& pipeline, const ml::Dataset& pool,
    const Splitter& splitter, const VarianceStudyConfig& config,
    rngx::Rng& master);

}  // namespace varbench::core

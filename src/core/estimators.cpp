#include "src/core/estimators.h"

#include <stdexcept>

#include "src/stats/descriptive.h"

namespace varbench::core {

std::string_view to_string(RandomizeSubset subset) {
  switch (subset) {
    case RandomizeSubset::kInit:
      return "Init";
    case RandomizeSubset::kData:
      return "Data";
    case RandomizeSubset::kAll:
      return "All";
  }
  return "unknown";
}

namespace {

std::vector<rngx::VariationSource> sources_of(RandomizeSubset subset) {
  switch (subset) {
    case RandomizeSubset::kInit:
      return {rngx::VariationSource::kWeightInit};
    case RandomizeSubset::kData:
      return {rngx::VariationSource::kDataSplit};
    case RandomizeSubset::kAll:
      return {rngx::kLearningSources.begin(), rngx::kLearningSources.end()};
  }
  throw std::invalid_argument("sources_of: unknown subset");
}

EstimatorResult summarize(std::vector<double> measures, std::size_t fits) {
  EstimatorResult r;
  r.measures = std::move(measures);
  r.mean = stats::mean(r.measures);
  r.stddev = stats::stddev(r.measures);
  r.fits = fits;
  return r;
}

}  // namespace

EstimatorResult ideal_estimator(const LearningPipeline& pipeline,
                                const ml::Dataset& pool,
                                const Splitter& splitter,
                                const HpoRunConfig& hpo, std::size_t k,
                                rngx::Rng& master) {
  if (k == 0) throw std::invalid_argument("ideal_estimator: k == 0");
  FitCounter counter;
  std::vector<double> measures;
  measures.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    // Algorithm 1: fresh ξO and ξH every iteration, full HOpt each time.
    const auto seeds = rngx::VariationSeeds::random(master);
    measures.push_back(
        run_pipeline_once(pipeline, pool, splitter, hpo, seeds, &counter));
  }
  return summarize(std::move(measures), counter.fits);
}

EstimatorResult fix_hopt_estimator(const LearningPipeline& pipeline,
                                   const ml::Dataset& pool,
                                   const Splitter& splitter,
                                   const HpoRunConfig& hpo, std::size_t k,
                                   RandomizeSubset subset,
                                   rngx::Rng& master) {
  if (k == 0) throw std::invalid_argument("fix_hopt_estimator: k == 0");
  FitCounter counter;

  // Algorithm 2, stage 1: one split, one HOpt, fixing λ̂* for all
  // measurements.
  auto base_seeds = rngx::VariationSeeds::random(master);
  auto split_rng = base_seeds.rng_for(rngx::VariationSource::kDataSplit);
  const Split s = splitter.split(pool, split_rng);
  const auto [trainvalid, test] = materialize(pool, s);
  (void)test;
  const hpo::ParamPoint lambda =
      run_hpo(pipeline, trainvalid, hpo, base_seeds, &counter);

  // Stage 2: k measurements re-randomizing only the chosen ξO subset.
  const auto randomized = sources_of(subset);
  std::vector<double> measures;
  measures.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto seeds = base_seeds.with_randomized_set(randomized, master);
    measures.push_back(
        measure_with_params(pipeline, pool, splitter, lambda, seeds, &counter));
  }
  return summarize(std::move(measures), counter.fits);
}

std::size_t ideal_estimator_cost(std::size_t k, std::size_t t) {
  return k * (t + 1);
}

std::size_t fix_hopt_estimator_cost(std::size_t k, std::size_t t) {
  return k + t;
}

double biased_estimator_variance(double var_single, double rho,
                                 std::size_t k) {
  if (k == 0) throw std::invalid_argument("biased_estimator_variance: k == 0");
  const auto kd = static_cast<double>(k);
  return var_single / kd + (kd - 1.0) / kd * rho * var_single;
}

double biased_estimator_mse(double var_single, double rho, double bias,
                            std::size_t k) {
  return biased_estimator_variance(var_single, rho, k) + bias * bias;
}

}  // namespace varbench::core

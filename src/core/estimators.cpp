#include "src/core/estimators.h"

#include <stdexcept>

#include "src/stats/descriptive.h"

namespace varbench::core {

std::string_view to_string(RandomizeSubset subset) {
  switch (subset) {
    case RandomizeSubset::kInit:
      return "Init";
    case RandomizeSubset::kData:
      return "Data";
    case RandomizeSubset::kAll:
      return "All";
  }
  return "unknown";
}

namespace {

std::vector<rngx::VariationSource> sources_of(RandomizeSubset subset) {
  switch (subset) {
    case RandomizeSubset::kInit:
      return {rngx::VariationSource::kWeightInit};
    case RandomizeSubset::kData:
      return {rngx::VariationSource::kDataSplit};
    case RandomizeSubset::kAll:
      return {rngx::kLearningSources.begin(), rngx::kLearningSources.end()};
  }
  throw std::invalid_argument("sources_of: unknown subset");
}

EstimatorResult summarize(std::vector<double> measures, std::size_t fits) {
  EstimatorResult r;
  r.measures = std::move(measures);
  // An empty shard slice (range.begin == range.end) is legal; statistics
  // only mean something on the merged whole.
  r.mean = r.measures.empty() ? 0.0 : stats::mean(r.measures);
  r.stddev = r.measures.empty() ? 0.0 : stats::stddev(r.measures);
  r.fits = fits;
  return r;
}

void validate_k_and_range(const char* who, std::size_t k,
                          exec::IndexRange range) {
  if (k == 0) throw std::invalid_argument(std::string{who} + ": k == 0");
  if (range.begin > range.end || range.end > k) {
    throw std::invalid_argument(std::string{who} + ": range [" +
                                std::to_string(range.begin) + ", " +
                                std::to_string(range.end) +
                                ") outside [0, k=" + std::to_string(k) + ")");
  }
}

// Measurement fan-out owns the hardware; HOpt runs nested inside a parallel
// region stay serial to avoid oversubscription (results are unaffected —
// HPO trial evaluation is thread-count invariant too).
HpoRunConfig nested_hpo_config(const HpoRunConfig& hpo,
                               const exec::ExecContext& ctx) {
  HpoRunConfig inner = hpo;
  if (!ctx.is_serial()) inner.exec = exec::ExecContext::serial();
  return inner;
}

}  // namespace

EstimatorResult ideal_estimator(const exec::ExecContext& ctx,
                                const LearningPipeline& pipeline,
                                const ml::Dataset& pool,
                                const Splitter& splitter,
                                const HpoRunConfig& hpo, std::size_t k,
                                exec::IndexRange range, rngx::Rng& master) {
  validate_k_and_range("ideal_estimator", k, range);
  FitCounter counter;
  const HpoRunConfig inner = nested_hpo_config(hpo, ctx);
  // Algorithm 1: fresh ξO and ξH per measurement, full HOpt each time; each
  // global index i draws its ξ from its own (master, tag, i) stream.
  auto measures = exec::parallel_replicate_range<double>(
      ctx, range, master, "ideal_estimator",
      [&](std::size_t, rngx::Rng& rng) {
        const auto seeds = rngx::VariationSeeds::random(rng);
        return run_pipeline_once(pipeline, pool, splitter, inner, seeds,
                                 &counter);
      });
  return summarize(std::move(measures), counter.fits);
}

EstimatorResult ideal_estimator(const exec::ExecContext& ctx,
                                const LearningPipeline& pipeline,
                                const ml::Dataset& pool,
                                const Splitter& splitter,
                                const HpoRunConfig& hpo, std::size_t k,
                                rngx::Rng& master) {
  return ideal_estimator(ctx, pipeline, pool, splitter, hpo, k,
                         exec::IndexRange{0, k}, master);
}

EstimatorResult ideal_estimator(const LearningPipeline& pipeline,
                                const ml::Dataset& pool,
                                const Splitter& splitter,
                                const HpoRunConfig& hpo, std::size_t k,
                                rngx::Rng& master) {
  return ideal_estimator(exec::ExecContext::serial(), pipeline, pool, splitter,
                         hpo, k, master);
}

EstimatorResult fix_hopt_estimator(const exec::ExecContext& ctx,
                                   const LearningPipeline& pipeline,
                                   const ml::Dataset& pool,
                                   const Splitter& splitter,
                                   const HpoRunConfig& hpo, std::size_t k,
                                   RandomizeSubset subset,
                                   exec::IndexRange range, rngx::Rng& master) {
  validate_k_and_range("fix_hopt_estimator", k, range);
  FitCounter counter;

  // Algorithm 2, stage 1: one split, one HOpt, fixing λ̂* for all
  // measurements. Always computed in full so that shard runs of stage 2
  // measure against the identical λ̂*.
  auto base_seeds = rngx::VariationSeeds::random(master);
  auto split_rng = base_seeds.rng_for(rngx::VariationSource::kDataSplit);
  const Split s = splitter.split(pool, split_rng);
  const auto [trainvalid, test] = materialize(pool, s);
  (void)test;
  const hpo::ParamPoint lambda =
      run_hpo(pipeline, trainvalid, hpo, base_seeds, &counter);

  // Stage 2: measurements re-randomizing only the chosen ξO subset, one
  // independent stream per global measurement index.
  const auto randomized = sources_of(subset);
  auto measures = exec::parallel_replicate_range<double>(
      ctx, range, master, "fix_hopt_estimator",
      [&](std::size_t, rngx::Rng& rng) {
        const auto seeds = base_seeds.with_randomized_set(randomized, rng);
        return measure_with_params(pipeline, pool, splitter, lambda, seeds,
                                   &counter);
      });
  return summarize(std::move(measures), counter.fits);
}

EstimatorResult fix_hopt_estimator(const exec::ExecContext& ctx,
                                   const LearningPipeline& pipeline,
                                   const ml::Dataset& pool,
                                   const Splitter& splitter,
                                   const HpoRunConfig& hpo, std::size_t k,
                                   RandomizeSubset subset, rngx::Rng& master) {
  return fix_hopt_estimator(ctx, pipeline, pool, splitter, hpo, k, subset,
                            exec::IndexRange{0, k}, master);
}

EstimatorResult fix_hopt_estimator(const LearningPipeline& pipeline,
                                   const ml::Dataset& pool,
                                   const Splitter& splitter,
                                   const HpoRunConfig& hpo, std::size_t k,
                                   RandomizeSubset subset,
                                   rngx::Rng& master) {
  return fix_hopt_estimator(exec::ExecContext::serial(), pipeline, pool,
                            splitter, hpo, k, subset, master);
}

std::size_t ideal_estimator_cost(std::size_t k, std::size_t t) {
  return k * (t + 1);
}

std::size_t fix_hopt_estimator_cost(std::size_t k, std::size_t t) {
  return k + t;
}

double biased_estimator_variance(double var_single, double rho,
                                 std::size_t k) {
  if (k == 0) throw std::invalid_argument("biased_estimator_variance: k == 0");
  const auto kd = static_cast<double>(k);
  return var_single / kd + (kd - 1.0) / kd * rho * var_single;
}

double biased_estimator_mse(double var_single, double rho, double bias,
                            std::size_t k) {
  return biased_estimator_variance(var_single, rho, k) + bias * bias;
}

}  // namespace varbench::core

#include "src/core/pipeline.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace varbench::core {

hpo::ParamPoint run_hpo(const LearningPipeline& pipeline,
                        const ml::Dataset& trainvalid,
                        const HpoRunConfig& config,
                        const rngx::VariationSeeds& seeds,
                        FitCounter* counter) {
  if (config.algorithm == nullptr) return pipeline.default_params();
  if (!(config.validation_fraction > 0.0 && config.validation_fraction < 1.0)) {
    throw std::invalid_argument("run_hpo: validation_fraction outside (0, 1)");
  }
  auto hpo_rng = seeds.rng_for(rngx::VariationSource::kHpo);

  // Inner S_t / S_v split of S_tv — part of HOpt's arbitrary choices (ξH).
  std::vector<std::size_t> order(trainvalid.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  hpo_rng.shuffle(order);
  const auto n_valid = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.validation_fraction *
                                  static_cast<double>(trainvalid.size())));
  if (n_valid >= trainvalid.size()) {
    throw std::invalid_argument("run_hpo: validation split leaves no train data");
  }
  const std::span<const std::size_t> valid_idx{order.data(), n_valid};
  const std::span<const std::size_t> train_idx{order.data() + n_valid,
                                               trainvalid.size() - n_valid};
  const ml::Dataset inner_train = ml::subset(trainvalid, train_idx);
  const ml::Dataset inner_valid = ml::subset(trainvalid, valid_idx);

  const hpo::Objective objective = [&](const hpo::ParamPoint& lambda) {
    if (counter != nullptr) ++counter->fits;
    // Minimize risk = 1 - performance (metrics are higher-is-better).
    return 1.0 - pipeline.train_and_evaluate(inner_train, inner_valid, lambda,
                                             seeds);
  };
  const hpo::HpoResult result = config.algorithm->optimize(
      config.exec, pipeline.search_space(), objective, config.budget, hpo_rng);
  return result.best;
}

double run_pipeline_once(const LearningPipeline& pipeline,
                         const ml::Dataset& pool, const Splitter& splitter,
                         const HpoRunConfig& config,
                         const rngx::VariationSeeds& seeds,
                         FitCounter* counter) {
  auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
  const Split s = splitter.split(pool, split_rng);
  const auto [trainvalid, test] = materialize(pool, s);
  const hpo::ParamPoint lambda = run_hpo(pipeline, trainvalid, config, seeds,
                                         counter);
  if (counter != nullptr) ++counter->fits;  // the final retraining
  return pipeline.train_and_evaluate(trainvalid, test, lambda, seeds);
}

double measure_with_params(const LearningPipeline& pipeline,
                           const ml::Dataset& pool, const Splitter& splitter,
                           const hpo::ParamPoint& lambda,
                           const rngx::VariationSeeds& seeds,
                           FitCounter* counter) {
  auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
  const Split s = splitter.split(pool, split_rng);
  const auto [train, test] = materialize(pool, s);
  if (counter != nullptr) ++counter->fits;
  return pipeline.train_and_evaluate(train, test, lambda, seeds);
}

}  // namespace varbench::core

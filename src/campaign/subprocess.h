// Minimal portable subprocess wrapper — the only place the campaign
// coordinator touches process creation. The scheduling logic itself talks
// to the WorkerLauncher abstraction (campaign.h), so everything above this
// file is testable in-process; only subprocess_launcher() reaches here.
#pragma once

#include <string>
#include <vector>

namespace varbench::campaign {

/// One spawned child process. Move-only; the destructor of a still-running
/// process kills it (a coordinator that unwinds must not leak workers).
class Subprocess {
 public:
  /// Start `argv` (argv[0] = program path, resolved through PATH) with
  /// stdout and stderr appended to the file at `log_path` (created if
  /// missing; empty path → inherit the parent's streams). Throws
  /// std::runtime_error when the process cannot be started.
  [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv,
                                        const std::string& log_path);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  /// Non-blocking liveness poll; reaps the child when it has exited.
  [[nodiscard]] bool running();

  /// Block until exit. Returns the exit status: the child's exit code when
  /// it exited normally, 128 + signal number when it was killed.
  int wait();

  /// Exit status after running() turned false / wait() returned.
  [[nodiscard]] int exit_code() const { return exit_code_; }

  /// Forcibly terminate (SIGKILL) a still-running child.
  void kill();

 private:
  Subprocess() = default;

  long pid_ = -1;  // -1 → reaped or never started
  int exit_code_ = -1;
};

/// Absolute path of the currently running executable when the platform can
/// tell us (/proc/self/exe on Linux), else `fallback` (typically argv[0]) —
/// how `varbench campaign` finds the binary to spawn workers with.
[[nodiscard]] std::string current_executable(const std::string& fallback);

/// This process's id — claim-owner uniqueness across coordinators.
[[nodiscard]] unsigned long current_process_id();

}  // namespace varbench::campaign

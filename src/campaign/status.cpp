#include "src/campaign/status.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace varbench::campaign {

namespace fs = std::filesystem;

namespace {

/// Milliseconds from `mtime` to now on the filesystem clock; 0 floor so a
/// write that lands "in the future" (clock skew on shared mounts) reads as
/// a fresh heartbeat, not a negative age.
double age_ms(fs::file_time_type mtime) {
  const auto delta = fs::file_time_type::clock::now() - mtime;
  const double ms =
      std::chrono::duration<double, std::milli>(delta).count();
  return ms < 0.0 ? 0.0 : ms;
}

std::string fmt_ms(double ms) {
  char buf[64];
  if (ms >= 60'000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", ms / 60'000.0);
  } else if (ms >= 1'000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", ms / 1'000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ms", ms);
  }
  return std::string{buf};
}

}  // namespace

CampaignStatus read_status(const std::string& state_dir) {
  CampaignStatus out;
  out.dir = state_dir;

  const std::string manifest_path =
      (fs::path{state_dir} / "campaign.json").string();
  io::Json manifest;
  try {
    manifest = io::Json::parse(io::read_file(manifest_path));
  } catch (const io::JsonError& e) {
    throw io::JsonError{"status: '" + state_dir +
                        "' holds no readable campaign manifest (" + e.what() +
                        ")"};
  }
  double wall_sum = 0.0;
  std::size_t wall_count = 0;
  for (const io::Json& task : manifest.at("tasks").as_array()) {
    ++out.tasks;
    const std::string& status = task.at("status").as_string();
    if (status == "done") {
      ++out.done;
      const io::Json* wall = task.find("wall_time_ms");
      if (wall != nullptr && wall->is_number() && wall->as_double() > 0.0) {
        wall_sum += wall->as_double();
        ++wall_count;
      }
    } else if (status == "failed") {
      ++out.failed;
    }
    const io::Json* attempts = task.find("attempts");
    if (attempts != nullptr && attempts->is_number() &&
        attempts->as_uint64() > 1) {
      out.retries += static_cast<std::size_t>(attempts->as_uint64()) - 1;
    }
  }
  out.pending = out.tasks - out.done - out.failed;
  if (wall_count > 0) {
    out.mean_task_wall_ms = wall_sum / static_cast<double>(wall_count);
  }

  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator{fs::path{state_dir} / "queue", ec}) {
    if (entry.path().extension() == ".todo") ++out.queued;
  }

  for (const auto& entry :
       fs::directory_iterator{fs::path{state_dir} / "claims", ec}) {
    if (entry.path().extension() != ".claim") continue;
    WorkerStatus w;
    std::error_code stat_ec;
    const auto mtime = fs::last_write_time(entry.path(), stat_ec);
    if (stat_ec) continue;  // completed between listing and stat
    w.heartbeat_age_ms = age_ms(mtime);
    try {
      const io::Json claim = io::Json::parse(io::read_file(entry.path().string()));
      w.task_id = claim.at("task").as_string();
      if (const io::Json* owner = claim.find("owner")) {
        w.owner = owner->as_string();
      }
      if (const io::Json* attempts = claim.find("attempts")) {
        w.attempts = static_cast<std::size_t>(attempts->as_uint64());
      }
      if (const io::Json* snap = claim.find("status")) {
        w.has_snapshot = true;
        if (const io::Json* running = snap->find("running_ms")) {
          w.running_ms = running->as_double();
        }
      }
    } catch (const io::JsonError&) {
      // Claim vanished or is mid-write: fall back to the file name.
      const std::string name = entry.path().filename().string();
      w.task_id = name.substr(0, name.size() - std::string{".claim"}.size());
    }
    out.workers.push_back(std::move(w));
  }
  std::sort(out.workers.begin(), out.workers.end(),
            [](const WorkerStatus& a, const WorkerStatus& b) {
              return a.task_id < b.task_id;
            });

  if (out.pending > 0 && out.mean_task_wall_ms > 0.0) {
    const std::size_t slots = std::max<std::size_t>(1, out.workers.size());
    out.eta_ms = static_cast<double>(out.pending) * out.mean_task_wall_ms /
                 static_cast<double>(slots);
  }
  return out;
}

io::Json status_json(const CampaignStatus& status) {
  io::Json doc = io::Json::object();
  doc.set("dir", io::Json{status.dir});
  io::Json tasks = io::Json::object();
  tasks.set("total", io::Json{status.tasks});
  tasks.set("done", io::Json{status.done});
  tasks.set("failed", io::Json{status.failed});
  tasks.set("pending", io::Json{status.pending});
  tasks.set("queued", io::Json{status.queued});
  tasks.set("retries", io::Json{status.retries});
  doc.set("tasks", std::move(tasks));
  doc.set("mean_task_wall_ms", io::Json{status.mean_task_wall_ms});
  doc.set("eta_ms", io::Json{status.eta_ms});
  io::Json workers = io::Json::array();
  for (const WorkerStatus& w : status.workers) {
    io::Json row = io::Json::object();
    row.set("task", io::Json{w.task_id});
    row.set("owner", io::Json{w.owner});
    row.set("attempt", io::Json{w.attempts});
    row.set("heartbeat_age_ms", io::Json{w.heartbeat_age_ms});
    if (w.has_snapshot) row.set("running_ms", io::Json{w.running_ms});
    workers.push_back(std::move(row));
  }
  doc.set("workers", std::move(workers));
  return doc;
}

std::string render_status_text(const CampaignStatus& status) {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof(line),
                "campaign %s: %zu/%zu task(s) done, %zu failed, %zu pending "
                "(%zu queued), %zu retrie(s)\n",
                status.dir.c_str(), status.done, status.tasks, status.failed,
                status.pending, status.queued, status.retries);
  out += line;
  if (status.mean_task_wall_ms > 0.0) {
    out += "  mean task wall " + fmt_ms(status.mean_task_wall_ms);
    if (status.eta_ms > 0.0) out += "; ETA ~" + fmt_ms(status.eta_ms);
    out += "\n";
  }
  if (status.workers.empty()) {
    out += "  no live workers (no claims on disk)\n";
  }
  for (const WorkerStatus& w : status.workers) {
    std::snprintf(line, sizeof(line),
                  "  worker %s: task %s attempt %zu, heartbeat %s ago",
                  w.owner.empty() ? "(unowned)" : w.owner.c_str(),
                  w.task_id.c_str(), w.attempts,
                  fmt_ms(w.heartbeat_age_ms).c_str());
    out += line;
    if (w.has_snapshot) {
      out += ", running " + fmt_ms(w.running_ms);
    }
    out += "\n";
  }
  return out;
}

}  // namespace varbench::campaign

// Live campaign visibility without touching the queue. `varbench status`
// (and embedders) read three things a running coordinator already
// maintains — the manifest, the claim files (whose bodies carry embedded
// progress snapshots since the status-heartbeat change, and whose mtimes
// are the liveness signal either way), and the queue listing — strictly
// read-only: no WorkQueue is constructed, no ticket is moved, so watching
// a campaign can never perturb it (docs/tracing.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/io/json.h"

namespace varbench::campaign {

/// One live claim = one worker slot, as the claim file tells it.
struct WorkerStatus {
  std::string task_id;
  std::string owner;
  std::size_t attempts = 0;
  /// Milliseconds since the claim's last heartbeat (mtime).
  double heartbeat_age_ms = 0.0;
  /// Fields below come from the embedded "status" snapshot; absent for
  /// claims written by coordinators predating the status heartbeat.
  bool has_snapshot = false;
  double running_ms = 0.0;
};

struct CampaignStatus {
  std::string dir;
  std::size_t tasks = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t pending = 0;  // tasks - done - failed (queued or claimed)
  std::size_t queued = 0;   // claimable tickets on disk right now
  /// Total attempts beyond each task's first, from the manifest.
  std::size_t retries = 0;
  /// Mean wall time of completed tasks with recorded provenance; 0 when
  /// none completed yet.
  double mean_task_wall_ms = 0.0;
  /// pending × mean wall / live worker slots; 0 until both are known.
  double eta_ms = 0.0;
  std::vector<WorkerStatus> workers;  // live claims, sorted by task id
};

/// Read the state dir's current status. Throws io::JsonError when the
/// directory holds no campaign manifest (or it is malformed).
[[nodiscard]] CampaignStatus read_status(const std::string& state_dir);

[[nodiscard]] io::Json status_json(const CampaignStatus& status);

/// Human-readable multi-line rendering (what `varbench status` prints).
[[nodiscard]] std::string render_status_text(const CampaignStatus& status);

}  // namespace varbench::campaign

#include "src/campaign/campaign.h"

#include <cstdarg>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <thread>

#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/io/columnar/stream_writer.h"
#include "src/io/columnar/vbt.h"
#include "src/io/json.h"
#include "src/metrics/metrics.h"
#include "src/rngx/rng.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/trace/file.h"
#include "src/trace/stopwatch.h"
#include "src/trace/trace.h"

namespace varbench::campaign {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kManifestSchema = "varbench.campaign.v1";

void event(const CampaignConfig& cfg, const char* fmt, ...) {
  if (cfg.events == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(cfg.events, fmt, args);
  va_end(args);
  std::fputc('\n', cfg.events);
  std::fflush(cfg.events);
}

struct TaskState {
  CampaignTask task;
  enum class Status { kPending, kDone, kFailed } status = Status::kPending;
  std::size_t attempts = 0;
  bool completed_this_run = false;
  /// Wall time of the successful attempt (worker-measured provenance from
  /// the artifact; coordinator launch-to-reap time when the artifact
  /// carries none). 0 until the task is done. Persisted in campaign.json
  /// so autoscaling hints and `varbench report <dir>` can read it.
  double wall_ms = 0.0;
};

std::string_view to_string(TaskState::Status s) {
  switch (s) {
    case TaskState::Status::kPending:
      return "pending";
    case TaskState::Status::kDone:
      return "done";
    case TaskState::Status::kFailed:
      return "failed";
  }
  return "pending";
}

// ------------------------------------------------------------- manifest

void write_manifest(const WorkQueue& queue, const CampaignConfig& cfg,
                    const std::vector<study::StudySpec>& studies,
                    const std::vector<TaskState>& states,
                    const metrics::Sink* sink = nullptr) {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kManifestSchema});
  doc.set("shards", io::Json{cfg.shards});
  doc.set("max_retries", io::Json{cfg.max_retries});
  io::Json specs = io::Json::array();
  for (const auto& s : studies) specs.push_back(s.to_json());
  doc.set("studies", std::move(specs));
  io::Json tasks = io::Json::array();
  for (const auto& st : states) {
    io::Json t = io::Json::object();
    t.set("id", io::Json{st.task.id});
    t.set("study", io::Json{st.task.study_index});
    t.set("shard", io::Json{st.task.spec.shard.label()});
    t.set("status", io::Json{to_string(st.status)});
    t.set("attempts", io::Json{st.attempts});
    t.set("wall_time_ms", io::Json{st.wall_ms});
    tasks.push_back(std::move(t));
  }
  doc.set("tasks", std::move(tasks));
  // Coordinator metrics ride along as provenance (identity lives in the
  // artifacts, not here): merged deterministically from the sink's
  // shards, written only when something was enabled.
  if (sink != nullptr && sink->any_enabled()) {
    const metrics::Snapshot snap = sink->snapshot();
    io::Json block = io::Json::object();
    for (const metrics::MetricSnapshot& m : snap.metrics) {
      const metrics::MetricDef& def = metrics::metric_defs()[m.id];
      if (def.subsystem != "campaign") continue;
      io::Json entry = io::Json::object();
      entry.set("count", io::Json{m.count});
      entry.set("sum", io::Json{m.sum});
      entry.set("mean", io::Json{m.mean()});
      if (def.kind != metrics::MetricKind::kCounter) {
        entry.set("p50", io::Json{m.percentile_upper(0.50)});
        entry.set("p90", io::Json{m.percentile_upper(0.90)});
        entry.set("p99", io::Json{m.percentile_upper(0.99)});
      }
      block.set(def.name, std::move(entry));
    }
    if (!block.as_object().empty()) doc.set("metrics", std::move(block));
  }
  WorkQueue::atomic_write(queue.manifest_path(), doc.dump(2) + "\n");
}

/// An existing manifest must describe this exact campaign — resuming with a
/// different spec list or shard count would mix incompatible artifacts.
void validate_manifest(const io::Json& doc, const std::string& path,
                       const std::vector<study::StudySpec>& studies,
                       std::size_t shards) {
  const std::string& schema = doc.at("schema").as_string();
  if (schema != kManifestSchema) {
    throw io::JsonError("campaign: unsupported manifest schema '" + schema +
                        "' in '" + path + "' (this build writes '" +
                        std::string{kManifestSchema} + "')");
  }
  const auto manifest_shards =
      static_cast<std::size_t>(doc.at("shards").as_uint64());
  if (manifest_shards != shards) {
    throw io::JsonError(
        "campaign: state dir was initialized with --shards " +
        std::to_string(manifest_shards) + " but this invocation asks for " +
        std::to_string(shards) + " — shard counts cannot change mid-campaign");
  }
  const auto& manifest_studies = doc.at("studies").as_array();
  if (manifest_studies.size() != studies.size()) {
    throw io::JsonError("campaign: state dir holds " +
                        std::to_string(manifest_studies.size()) +
                        " studies but the spec file lists " +
                        std::to_string(studies.size()) +
                        " — resume with the original spec file");
  }
  for (std::size_t k = 0; k < studies.size(); ++k) {
    if (study::StudySpec::from_json(manifest_studies[k]) != studies[k]) {
      throw io::JsonError(
          "campaign: study " + std::to_string(k) +
          " differs from the one this state dir was initialized with — "
          "resume with the original spec file or use a fresh --dir");
    }
  }
}

// ------------------------------------------------------------ validation

/// Empty string when the artifact at `path` is exactly `task`'s shard of
/// `task`'s study; an actionable reason otherwise. On success `wall_ms`
/// (when given) receives the artifact's wall-time provenance (0 when the
/// artifact carries none).
std::string validate_artifact(const std::string& path,
                              const CampaignTask& task,
                              double* wall_ms = nullptr) {
  study::ResultTable table;
  try {
    table = study::ResultTable::load(path);  // JSON or binary, by content
  } catch (const std::exception& e) {
    return std::string{"unreadable artifact: "} + e.what();
  }
  if (table.shard != task.spec.shard) {
    return "artifact holds shard " + table.shard.label() +
           " but the task is shard " + task.spec.shard.label() +
           " (duplicate or misplaced shard artifact)";
  }
  study::StudySpec expected = task.spec;  // execution-normal form
  expected.shard = study::ShardSpec{};
  expected.threads = 1;
  if (!table.spec.has_value() || !(*table.spec == expected) ||
      table.seed != task.spec.seed) {
    return "artifact was produced by a different study spec (seed/params "
           "mismatch)";
  }
  if (wall_ms != nullptr) *wall_ms = table.wall_time_ms;
  return {};
}

/// merged/s<k>-<kind>-<case>.<ext> — predictable without loading artifacts.
std::string merged_output_path(const WorkQueue& queue, std::size_t study_index,
                               const study::StudySpec& spec,
                               std::string_view ext) {
  return (fs::path{queue.merged_dir()} /
          ("s" + std::to_string(study_index) + "-" +
           std::string{study::to_string(spec.kind)} + "-" + spec.case_study +
           std::string{ext}))
      .string();
}

class CompletedHandle : public WorkerHandle {
 public:
  explicit CompletedHandle(int code) : code_{code} {}
  bool running() override { return false; }
  int exit_code() override { return code_; }

 private:
  int code_;
};

}  // namespace

// ----------------------------------------------------------------- plan

std::vector<CampaignTask> plan_tasks(
    const std::vector<study::StudySpec>& studies, std::size_t shards) {
  if (studies.empty()) {
    throw std::invalid_argument("campaign: no studies to run");
  }
  if (shards == 0) {
    throw std::invalid_argument("campaign: --shards must be >= 1");
  }
  std::vector<CampaignTask> tasks;
  for (std::size_t k = 0; k < studies.size(); ++k) {
    // One HOpt run is inherently sequential (study_runner rejects sharding
    // for it) — an hpo study is a single task regardless of --shards.
    const std::size_t n =
        studies[k].kind == study::StudyKind::kHpo ? 1 : shards;
    for (std::size_t i = 0; i < n; ++i) {
      CampaignTask t;
      t.study_index = k;
      t.spec = studies[k];
      t.spec.shard = study::ShardSpec{i, n};
      t.id = "s" + std::to_string(k) + "-" + std::to_string(i) + "of" +
             std::to_string(n);
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

// ------------------------------------------------------------ coordinator

CampaignReport run_campaign(const CampaignConfig& cfg,
                            const std::vector<study::StudySpec>& studies,
                            const WorkerLauncher& launcher) {
  if (cfg.workers == 0) {
    throw std::invalid_argument("campaign: --workers must be >= 1");
  }
  if (cfg.dir.empty()) {
    throw std::invalid_argument("campaign: state directory must be given");
  }
  const bool binary = cfg.format == study::ArtifactFormat::kBinary;
  const std::string ext = binary ? ".vbt" : ".json";
  WorkQueue queue{cfg.dir, ext};
  metrics::Sink& sink =
      cfg.metrics != nullptr ? *cfg.metrics : metrics::global_sink();
  // The coordinator's tracer is run-local by default — deliberately NOT
  // trace::global_tracer(), which in_process_launcher() resets and drains
  // per task and must not swallow coordinator lifecycle spans. All-disabled
  // (every emit is one branch) unless cfg.trace turned the campaign
  // subsystem on.
  trace::Tracer local_tracer;
  trace::Tracer& tracer = cfg.tracer != nullptr ? *cfg.tracer : local_tracer;
  if (cfg.trace && cfg.tracer == nullptr) {
    trace::enable_selection(local_tracer, "campaign");
  }
  // Lifecycle instants carry the task-id hash as their identity-derived
  // ident, with the readable id attached as a label (docs/tracing.md).
  const auto task_event = [&tracer](trace::SpanId id,
                                    const std::string& task_id) {
    if (!tracer.is_enabled(id)) return;
    const std::uint64_t ident = rngx::hash_tag(task_id);
    tracer.set_label(ident, task_id);
    trace::instant(tracer, id, ident);
  };
  auto tasks = plan_tasks(studies, cfg.shards);

  CampaignReport report;
  report.tasks = tasks.size();

  const bool have_manifest = fs::exists(queue.manifest_path());
  if (have_manifest && !cfg.resume) {
    throw io::JsonError(
        "campaign: '" + cfg.dir + "' already holds a campaign — pass "
        "--resume to finish its gaps, or point --dir at a fresh directory");
  }
  // Wall times a previous coordinator recorded must survive --resume even
  // when the reused artifact itself carries no provenance (the promote
  // path records coordinator-measured time for exactly those artifacts).
  std::map<std::string, double> prior_wall_ms;
  if (have_manifest) {
    const io::Json doc = io::Json::parse(io::read_file(queue.manifest_path()));
    validate_manifest(doc, queue.manifest_path(), studies, cfg.shards);
    for (const io::Json& task : doc.at("tasks").as_array()) {
      const io::Json* wall = task.find("wall_time_ms");
      if (wall != nullptr && wall->is_number() && wall->as_double() > 0.0) {
        prior_wall_ms[task.at("id").as_string()] = wall->as_double();
      }
    }
  }
  const auto fall_back_to_prior_wall = [&](TaskState& st) {
    if (st.wall_ms > 0.0) return;
    const auto it = prior_wall_ms.find(st.task.id);
    if (it != prior_wall_ms.end()) st.wall_ms = it->second;
  };

  std::vector<TaskState> states;
  states.reserve(tasks.size());
  for (auto& t : tasks) states.push_back(TaskState{std::move(t)});

  const std::string owner =
      "coordinator-" + std::to_string(current_process_id());

  // Initialization doubles as gap analysis on resume: a task with a valid
  // artifact is done, everything else (re)enters the queue.
  for (auto& st : states) {
    const std::string& id = st.task.id;
    if (!fs::exists(queue.spec_path(id))) {
      WorkQueue::atomic_write(queue.spec_path(id), st.task.spec.to_json_text());
    }
    // Probe both formats: a --format change between runs must not redo
    // (or worse, mistrust) shards that already landed the other way.
    const std::string existing = queue.existing_artifact_path(id);
    if (fs::exists(existing)) {
      const std::string err = validate_artifact(existing, st.task,
                                                &st.wall_ms);
      if (err.empty()) {
        fall_back_to_prior_wall(st);
        st.status = TaskState::Status::kDone;
        ++report.reused;
        event(cfg, "task %s: reusing existing artifact", id.c_str());
      } else {
        std::error_code ec;
        fs::remove(existing, ec);
        event(cfg, "task %s: discarding invalid artifact (%s)", id.c_str(),
              err.c_str());
      }
    }
    if (st.status == TaskState::Status::kPending && !queue.is_queued(id) &&
        !queue.is_claimed(id)) {
      queue.enqueue(Ticket{id, 0, ""});
      task_event(trace::kCampaignTaskQueued, id);
    }
  }
  write_manifest(queue, cfg, studies, states, &sink);

  // Per-study incremental merge: fires the moment a study's last shard
  // lands (while other studies may still be running), and regenerates a
  // missing or superseded merged file on resume.
  std::vector<bool> study_merged(studies.size(), false);
  const auto maybe_merge_study = [&](std::size_t k) {
    if (study_merged[k]) return;
    bool fresh = false;
    for (const auto& st : states) {
      if (st.task.study_index != k) continue;
      if (st.status != TaskState::Status::kDone) return;  // incomplete
      fresh = fresh || st.completed_this_run;
    }
    const std::string out = merged_output_path(queue, k, studies[k], ext);
    if (!fresh && fs::exists(out)) {
      study_merged[k] = true;
      report.merged_outputs.push_back(out);
      return;
    }
    const trace::ScopedSpan merge_span{tracer, trace::kCampaignStudyMerged,
                                       static_cast<std::uint64_t>(k)};
    try {
      std::vector<std::string> shard_paths;
      for (const auto& st : states) {
        if (st.task.study_index != k) continue;
        shard_paths.push_back(queue.existing_artifact_path(st.task.id));
      }
      const std::size_t count = shard_paths.size();
      bool all_vbt = binary;
      for (const std::string& p : shard_paths) {
        all_vbt = all_vbt && p.size() > 4 &&
                  p.compare(p.size() - 4, 4, ".vbt") == 0;
      }
      if (all_vbt) {
        // Streaming k-way merge: shards stay mmap'd and the merged file
        // goes out one row-group chunk at a time — peak memory is chunk-
        // bounded, bytes identical to the in-memory encode path below.
        const std::string tmp = out + ".tmp-merge";
        io::columnar::stream_merge_vbt(shard_paths, tmp,
                                       /*include_provenance=*/false);
        std::error_code mv_ec;
        fs::rename(tmp, out, mv_ec);
        if (mv_ec) {
          throw io::JsonError("campaign: cannot move '" + tmp + "' to '" +
                              out + "': " + mv_ec.message());
        }
      } else {
        // Shards may be a mix of formats after a --format change; load
        // dispatches per file.
        std::vector<study::ResultTable> shards;
        shards.reserve(shard_paths.size());
        for (const std::string& p : shard_paths) {
          shards.push_back(study::ResultTable::load(p));
        }
        const auto merged = study::merge_result_tables(std::move(shards));
        // Identity-only bytes either way, so merged outputs stay
        // byte-comparable across runs, worker counts, and formats.
        WorkQueue::atomic_write(
            out, binary ? io::columnar::encode_vbt(
                              merged, /*include_provenance=*/false)
                        : merged.canonical_text());
      }
      // After a --format change, drop the superseded other-format merged
      // file — a directory report must see each study exactly once.
      std::error_code sibling_ec;
      fs::remove(merged_output_path(queue, k, studies[k],
                                    binary ? ".json" : ".vbt"),
                 sibling_ec);
      event(cfg, "study %zu: merged %zu shard(s) -> %s", k, count,
            out.c_str());
      report.merged_outputs.push_back(out);
    } catch (const std::exception& e) {
      report.failures.push_back("study " + std::to_string(k) +
                                ": merge failed: " + e.what());
    }
    study_merged[k] = true;
  };

  struct Active {
    Ticket ticket;
    std::size_t state_index;
    std::unique_ptr<WorkerHandle> handle;
    std::chrono::steady_clock::time_point started;
    std::chrono::steady_clock::time_point last_beat;
    /// Last time the heartbeat rewrote the claim body with a status
    /// snapshot (full rewrites are throttled; mtime-only touches are not).
    std::chrono::steady_clock::time_point last_status;
    /// trace::span_begin of the campaign.task_running span; 0 = disabled.
    std::uint64_t trace_begin = 0;
  };
  std::vector<Active> active;

  // The live progress snapshot a status-carrying heartbeat embeds in the
  // claim body — everything `varbench status` shows without touching the
  // queue (docs/tracing.md).
  const auto status_snapshot = [&](const Active& a) {
    const TaskState& st = states[a.state_index];
    std::size_t done = 0;
    for (const auto& s : states) {
      if (s.status == TaskState::Status::kDone) ++done;
    }
    io::Json status = io::Json::object();
    status.set("attempt", io::Json{st.attempts});
    status.set("running_ms",
               io::Json{std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - a.started)
                            .count()});
    status.set("tasks_done", io::Json{done});
    status.set("tasks_total", io::Json{states.size()});
    status.set("retried", io::Json{report.retried});
    status.set("workers_active", io::Json{active.size()});
    return status;
  };

  const auto state_index_of = [&](const std::string& id) -> std::size_t {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i].task.id == id) return i;
    }
    return states.size();
  };
  const auto pending_count = [&] {
    std::size_t n = 0;
    for (const auto& st : states) {
      if (st.status == TaskState::Status::kPending) ++n;
    }
    return n;
  };

  while (pending_count() > 0 || !active.empty()) {
    bool progressed = false;

    // 1. Reap finished workers: validate + promote the artifact, or retry.
    //    A worker past task_timeout is killed and reaped as a failure —
    //    staleness only covers *other* coordinators' claims, so a hung
    //    worker of our own needs this bound to not stall the campaign.
    for (auto it = active.begin(); it != active.end();) {
      bool timed_out = false;
      if (it->handle->running()) {
        if (cfg.task_timeout.count() > 0 &&
            std::chrono::steady_clock::now() - it->started >
                cfg.task_timeout) {
          timed_out = true;
          it->handle->kill();
          while (it->handle->running()) {
            std::this_thread::sleep_for(std::chrono::milliseconds{1});
          }
        } else {
          // Plain mtime touch every poll; full status-body rewrite at most
          // ~1/s (the first beat immediately), so liveness stays cheap and
          // `varbench status` still sees fresh numbers.
          const auto now = std::chrono::steady_clock::now();
          if (now - it->last_status >= std::chrono::seconds{1}) {
            queue.heartbeat(it->ticket, status_snapshot(*it));
            it->last_status = now;
          } else {
            queue.heartbeat(it->ticket);
          }
          // Beat-to-beat period vs poll_interval: scheduling jitter of the
          // reap loop (autoscaling signal, ROADMAP item 2).
          if (sink.is_enabled(metrics::kCampaignHeartbeatJitterNs)) {
            const auto beat = std::chrono::steady_clock::now();
            const auto period = std::chrono::duration_cast<
                std::chrono::nanoseconds>(beat - it->last_beat);
            const auto target = std::chrono::duration_cast<
                std::chrono::nanoseconds>(cfg.poll_interval);
            const auto jitter_ns = period > target ? period - target
                                                   : target - period;
            sink.observe(metrics::kCampaignHeartbeatJitterNs,
                         static_cast<std::uint64_t>(jitter_ns.count()));
            it->last_beat = beat;
          }
          ++it;
          continue;
        }
      }
      progressed = true;
      TaskState& st = states[it->state_index];
      const std::string& id = st.task.id;
      trace::span_end(tracer, trace::kCampaignTaskRunning, rngx::hash_tag(id),
                      it->trace_begin);
      const int code = it->handle->exit_code();
      const std::string part = queue.partial_artifact_path(id);

      std::string err;
      if (timed_out) {
        err = "worker exceeded --task-timeout-ms (" +
              std::to_string(cfg.task_timeout.count()) + " ms) and was killed";
      } else if (code != 0) {
        err = "worker exited with code " + std::to_string(code);
      } else if (!fs::exists(part)) {
        err = "worker exited 0 but wrote no artifact";
      } else {
        double wall_ms = 0.0;
        err = validate_artifact(part, st.task, &wall_ms);
        if (err.empty()) {
          std::error_code ec;
          fs::rename(part, queue.artifact_path(id), ec);
          if (ec) {
            err = "cannot promote artifact: " + ec.message();
          } else {
            st.wall_ms =
                wall_ms > 0.0
                    ? wall_ms
                    : std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - it->started)
                          .count();
          }
        }
      }

      if (err.empty()) {
        st.status = TaskState::Status::kDone;
        st.completed_this_run = true;
        queue.complete(it->ticket);
        task_event(trace::kCampaignTaskPromoted, id);
        event(cfg, "task %s: done (attempt %zu)", id.c_str(), st.attempts);
        maybe_merge_study(st.task.study_index);
      } else {
        std::error_code ec;
        fs::remove(part, ec);
        const std::size_t used = it->ticket.attempts + 1;
        if (used < 1 + cfg.max_retries) {
          queue.release_for_retry(it->ticket, used);
          task_event(trace::kCampaignTaskRetried, id);
          ++report.retried;
          sink.add(metrics::kCampaignTaskRetries);
          event(cfg, "task %s: attempt %zu failed (%s; log: %s) — retrying",
                id.c_str(), used, err.c_str(), queue.log_path(id).c_str());
        } else {
          st.status = TaskState::Status::kFailed;
          queue.complete(it->ticket);
          report.failures.push_back("task " + id + ": " + err + " after " +
                                    std::to_string(used) +
                                    " attempt(s) (log: " +
                                    queue.log_path(id) + ")");
          event(cfg, "task %s: FAILED after %zu attempt(s): %s", id.c_str(),
                used, err.c_str());
        }
      }
      write_manifest(queue, cfg, studies, states, &sink);
      it = active.erase(it);
    }

    // 2. Reclaim claims whose owner stopped heartbeating (crashed worker
    //    or coordinator sharing this state dir).
    for (const std::string& id :
         queue.requeue_stale_claims(cfg.stale_after, owner)) {
      ++report.reclaimed_stale;
      progressed = true;
      event(cfg, "task %s: reclaimed stale claim", id.c_str());
    }

    // 3. A foreign coordinator may finish tasks behind our back: adopt any
    //    validated artifact that appeared for an unclaimed pending task.
    for (auto& st : states) {
      if (st.status != TaskState::Status::kPending) continue;
      const std::string& id = st.task.id;
      bool ours = false;
      for (const auto& a : active) ours |= states[a.state_index].task.id == id;
      const std::string adopted = queue.existing_artifact_path(id);
      if (ours || queue.is_claimed(id) || !fs::exists(adopted)) {
        continue;
      }
      if (validate_artifact(adopted, st.task, &st.wall_ms).empty()) {
        fall_back_to_prior_wall(st);
        st.status = TaskState::Status::kDone;
        progressed = true;
        event(cfg, "task %s: completed externally", id.c_str());
        write_manifest(queue, cfg, studies, states, &sink);
        maybe_merge_study(st.task.study_index);
      }
    }

    // 4. Fill the worker pool.
    while (active.size() < cfg.workers) {
      auto ticket = queue.try_claim(owner);
      if (!ticket.has_value()) break;
      const std::size_t idx = state_index_of(ticket->task_id);
      if (idx == states.size() ||
          states[idx].status != TaskState::Status::kPending) {
        queue.complete(*ticket);  // stray or already-satisfied ticket
        continue;
      }
      TaskState& st = states[idx];
      st.attempts = ticket->attempts + 1;
      task_event(trace::kCampaignTaskClaimed, st.task.id);
      std::error_code ec;
      fs::remove(queue.partial_artifact_path(st.task.id), ec);
      const auto claimed_at = std::chrono::steady_clock::now();
      const std::uint64_t trace_begin =
          trace::span_begin(tracer, trace::kCampaignTaskRunning);
      auto handle = launcher(st.task, queue.spec_path(st.task.id),
                             queue.partial_artifact_path(st.task.id),
                             queue.log_path(st.task.id));
      ++report.launched;
      sink.add(metrics::kCampaignTasksLaunched);
      const auto launched_at = std::chrono::steady_clock::now();
      sink.observe_lazy(metrics::kCampaignClaimToStartNs, [&] {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   launched_at - claimed_at)
            .count();
      });
      progressed = true;
      event(cfg, "task %s: launched (attempt %zu)", st.task.id.c_str(),
            st.attempts);
      active.push_back(Active{*ticket, idx, std::move(handle), launched_at,
                              launched_at, {}, trace_begin});
    }

    // 5. Nothing running and nothing claimable: remaining tasks must be
    //    claimed elsewhere (we wait for completion or staleness). If they
    //    are not even claimed, the queue lost them — fail loudly instead
    //    of spinning forever.
    if (active.empty() && pending_count() > 0) {
      bool any_recoverable = false;
      for (const auto& st : states) {
        if (st.status != TaskState::Status::kPending) continue;
        any_recoverable |= queue.is_queued(st.task.id) ||
                           queue.is_claimed(st.task.id);
      }
      if (!any_recoverable) {
        for (auto& st : states) {
          if (st.status != TaskState::Status::kPending) continue;
          st.status = TaskState::Status::kFailed;
          report.failures.push_back("task " + st.task.id +
                                    ": vanished from the work queue");
        }
        write_manifest(queue, cfg, studies, states, &sink);
        break;
      }
    }

    if (!progressed) std::this_thread::sleep_for(cfg.poll_interval);
  }

  // Studies fully satisfied by reused artifacts never saw a completion
  // event — make sure every complete study has its merged output.
  for (std::size_t k = 0; k < studies.size(); ++k) maybe_merge_study(k);

  for (const auto& st : states) {
    if (st.status == TaskState::Status::kDone) ++report.completed;
  }
  write_manifest(queue, cfg, studies, states, &sink);
  if (cfg.trace) {
    // Coordinator lifecycle spans, plus whatever the coordinator itself
    // recorded on the process-global tracer (io spans from artifact loads
    // during validation/merge) when that is a different object.
    trace::TraceFile coord = trace::drain(tracer, "coordinator");
    if (&trace::global_tracer() != &tracer &&
        trace::global_tracer().any_enabled()) {
      trace::append(coord, trace::drain(trace::global_tracer(), "coordinator"));
    }
    trace::write_trace_file(
        (fs::path{queue.trace_dir()} / "coordinator.trace.json").string(),
        coord);
  }
  event(cfg,
        "campaign: %zu/%zu task(s) done (launched %zu worker(s), reused %zu "
        "artifact(s), retried %zu, reclaimed %zu stale claim(s)); state: %s",
        report.completed, report.tasks, report.launched, report.reused,
        report.retried, report.reclaimed_stale, cfg.dir.c_str());
  return report;
}

// -------------------------------------------------------------- launchers

WorkerLauncher subprocess_launcher(std::string varbench_binary, bool trace) {
  return [bin = std::move(varbench_binary), trace](
             const CampaignTask& task, const std::string& spec_path,
             const std::string& artifact_path,
             const std::string& log_path) -> std::unique_ptr<WorkerHandle> {
    class ProcessHandle : public WorkerHandle {
     public:
      explicit ProcessHandle(Subprocess p) : process_{std::move(p)} {}
      bool running() override { return process_.running(); }
      int exit_code() override { return process_.exit_code(); }
      void kill() override { process_.kill(); }

     private:
      Subprocess process_;
    };
    try {
      std::vector<std::string> argv{bin, "run", spec_path, "--out",
                                    artifact_path};
      if (trace) {
        // artifact_path is <dir>/artifacts/<id>.<ext>.part — the state dir
        // is two levels up, and the trace lands beside the other workers'.
        const fs::path state_dir =
            fs::path{artifact_path}.parent_path().parent_path();
        argv.push_back("--trace-out");
        argv.push_back(
            (state_dir / "traces" / trace::worker_trace_name(task.id))
                .string());
      }
      return std::make_unique<ProcessHandle>(
          Subprocess::spawn(argv, log_path));
    } catch (const std::exception& e) {
      // Spawn failure counts as a failed attempt, not a coordinator crash.
      try {
        io::write_file(log_path, std::string{"spawn failed: "} + e.what() +
                                     "\n");
      } catch (const io::JsonError&) {
      }
      return std::make_unique<CompletedHandle>(127);
    }
  };
}

WorkerLauncher in_process_launcher(bool trace) {
  return [trace](const CampaignTask& task, const std::string& spec_path,
                 const std::string& artifact_path,
                 const std::string& log_path) -> std::unique_ptr<WorkerHandle> {
    try {
      // Tracing mirrors what a subprocess worker with --trace-out does:
      // the process-global tracer, reset before the run so the task's
      // trace numbers exec regions from 0, drained to the task's worker
      // trace file after.
      trace::Tracer& g = trace::global_tracer();
      if (trace) {
        g.reset();
        g.enable_all();
      }
      // Execute what the state dir records — exactly what a subprocess
      // worker would read — not the in-memory task.
      const auto spec =
          study::StudySpec::from_json_text(io::read_file(spec_path));
      const auto table = study::run_study(spec);
      // The destination's extension says which format the campaign runs
      // in (".vbt.part" → binary), same as the subprocess worker's --out.
      const bool binary = study::infer_artifact_format(artifact_path) ==
                          study::ArtifactFormat::kBinary;
      WorkQueue::atomic_write(artifact_path,
                              binary ? io::columnar::encode_vbt(table)
                                     : table.to_json_text());
      if (trace) {
        const fs::path state_dir =
            fs::path{artifact_path}.parent_path().parent_path();
        trace::write_trace_file(
            (state_dir / "traces" / trace::worker_trace_name(task.id))
                .string(),
            trace::drain(g, "worker-" + task.id));
      }
      return std::make_unique<CompletedHandle>(0);
    } catch (const std::exception& e) {
      try {
        io::write_file(log_path, std::string{e.what()} + "\n");
      } catch (const io::JsonError&) {
      }
      return std::make_unique<CompletedHandle>(1);
    }
  };
}

}  // namespace varbench::campaign

// Campaign coordinator: fan a list of StudySpecs out as shard tasks over a
// pool of workers, retry failures up to a bound, merge completed studies
// incrementally, and leave a resumable state directory behind.
//
// The scheduling logic is process-agnostic: workers are launched through
// the WorkerLauncher abstraction, so tests (and embedders) drive the whole
// coordinator in-process while `varbench campaign` plugs in
// subprocess_launcher() to spawn `varbench run` children. Determinism
// argument: every task is an ordinary shard run — per-repetition RNG
// streams keyed by the global repetition index — so whatever order, worker
// count, retry history, or machine the shards land from, the merged
// artifact is byte-identical to the unsharded run (docs/campaigns.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/study/result_table.h"
#include "src/study/study_spec.h"

namespace varbench::metrics {
class Sink;
}  // namespace varbench::metrics

namespace varbench::trace {
class Tracer;
}  // namespace varbench::trace

namespace varbench::campaign {

/// One schedulable unit: study `study_index` restricted to `spec.shard`.
struct CampaignTask {
  std::string id;  // "s<study>-<i>of<N>": file-name-safe and sort-stable
  std::size_t study_index = 0;
  study::StudySpec spec;
};

/// A started worker, polled by the coordinator.
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;
  virtual bool running() = 0;
  /// Valid once running() is false: 0 = success, anything else = failure.
  virtual int exit_code() = 0;
  /// Forcibly terminate a still-running worker (task_timeout enforcement).
  /// running() must eventually turn false after this. Default: no-op, for
  /// launchers that finish synchronously.
  virtual void kill() {}
};

/// Start work on `task` (its spec is serialized at `spec_path`), writing
/// the shard artifact to `artifact_path` on success and diagnostics to
/// `log_path`. Must not throw for ordinary worker failures — report those
/// through the handle's exit code.
using WorkerLauncher = std::function<std::unique_ptr<WorkerHandle>(
    const CampaignTask& task, const std::string& spec_path,
    const std::string& artifact_path, const std::string& log_path)>;

struct CampaignConfig {
  std::string dir;          // state directory (created if missing)
  std::size_t shards = 1;   // shards per study (hpo studies always get 1)
  std::size_t workers = 1;  // max concurrently running workers
  std::size_t max_retries = 2;  // re-launches allowed after the first attempt
  std::chrono::milliseconds stale_after{60'000};  // claim heartbeat timeout
  /// Kill a worker still running after this long and count the launch as a
  /// failed attempt — a hung (not crashed) worker must not stall the
  /// campaign forever. 0 disables the limit.
  std::chrono::milliseconds task_timeout{0};
  std::chrono::milliseconds poll_interval{25};
  bool resume = false;       // required to reuse an initialized state dir
  std::FILE* events = nullptr;  // progress lines (CLI: stderr); null = quiet
  /// Format new shard artifacts and merged outputs are written in (kAuto
  /// behaves as kJson). Resuming in a different format than the state dir
  /// was run with is fine: valid shards of either format are reused, and
  /// merge reads mixed .json/.vbt sets.
  study::ArtifactFormat format = study::ArtifactFormat::kJson;
  /// Optional metrics sink (docs/metrics.md): claim-to-start latency,
  /// retry counts, heartbeat jitter. nullptr resolves to
  /// metrics::global_sink(). When any campaign metric is enabled, the
  /// merged totals are emitted into campaign.json as a "metrics"
  /// provenance block next to the per-task wall_time_ms.
  metrics::Sink* metrics = nullptr;
  /// Record task-lifecycle spans (queued → claimed → running →
  /// promoted/retried, study merges) and flush them to
  /// `<dir>/traces/coordinator.trace.json` at the end of the run
  /// (docs/tracing.md). Traces are provenance only: artifacts stay
  /// byte-identical with tracing on (pinned by tests/test_trace.cpp).
  bool trace = false;
  /// Tracer the coordinator records into when `trace` is set. nullptr — the
  /// default — means a run-local tracer, deliberately NOT the process
  /// global one: in_process_launcher() drains the global tracer into each
  /// task's worker trace file, which must not swallow coordinator spans.
  trace::Tracer* tracer = nullptr;
};

struct CampaignReport {
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t launched = 0;         // worker launches, including retries
  std::size_t reused = 0;           // tasks satisfied by existing artifacts
  std::size_t retried = 0;
  std::size_t reclaimed_stale = 0;
  std::vector<std::string> merged_outputs;  // merged artifact paths
  std::vector<std::string> failures;        // "task <id>: <why>"

  [[nodiscard]] bool ok() const {
    return failures.empty() && completed == tasks;
  }
};

/// Split every study into its shard tasks ("s<k>-<i>of<N>"). Studies whose
/// kind cannot shard (hpo) get exactly one task. Throws on empty input.
[[nodiscard]] std::vector<CampaignTask> plan_tasks(
    const std::vector<study::StudySpec>& studies, std::size_t shards);

/// Drive the campaign to completion (or bounded failure): initialize or
/// resume the state directory, schedule shard tasks through the work queue,
/// launch up to `workers` workers at a time, validate + retry, and merge
/// each study as its last shard lands. Throws io::JsonError on a state
/// directory that cannot be (re)used; per-task failures land in the report.
[[nodiscard]] CampaignReport run_campaign(
    const CampaignConfig& config, const std::vector<study::StudySpec>& studies,
    const WorkerLauncher& launcher);

/// Launcher that spawns `<varbench_binary> run <spec> --out <artifact>`.
/// With `trace` set, workers run with `--trace-out <state>/traces/
/// worker-<task>.trace.json` so every task leaves a trace file behind.
[[nodiscard]] WorkerLauncher subprocess_launcher(std::string varbench_binary,
                                                 bool trace = false);

/// Launcher that calls study::run_study() in this process (synchronously).
/// The coordinator-under-test path, and the embedder path when process
/// isolation is not wanted. With `trace` set, each task runs with the
/// process-global tracer fully enabled (reset before, drained to the
/// task's worker trace file after) — the in-process analogue of a worker
/// subprocess's own tracer.
[[nodiscard]] WorkerLauncher in_process_launcher(bool trace = false);

}  // namespace varbench::campaign

#include "src/campaign/subprocess.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifdef _WIN32
// The campaign coordinator's scheduling logic is portable (std::filesystem);
// only worker spawning needs a platform backend. Wire CreateProcess here if
// Windows support is ever needed — every caller goes through this one file.
#else
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace varbench::campaign {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("subprocess: " + what + ": " +
                           std::strerror(errno));
}

#ifndef _WIN32
/// waitpid status → the exit-code convention documented in the header.
int decode_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}
#endif

}  // namespace

#ifdef _WIN32

Subprocess Subprocess::spawn(const std::vector<std::string>&,
                             const std::string&) {
  throw std::runtime_error(
      "subprocess: process spawning is not implemented on this platform "
      "(campaign workers require POSIX; use an in-process WorkerLauncher)");
}
bool Subprocess::running() { return false; }
int Subprocess::wait() { return exit_code_; }
void Subprocess::kill() {}
Subprocess::~Subprocess() = default;
Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }
Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = std::exchange(other.pid_, -1);
  exit_code_ = other.exit_code_;
  return *this;
}

std::string current_executable(const std::string& fallback) { return fallback; }

unsigned long current_process_id() { return 0; }

#else

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const std::string& log_path) {
  if (argv.empty()) throw std::runtime_error("subprocess: empty argv");

  int log_fd = -1;
  if (!log_path.empty()) {
    log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd < 0) fail("cannot open log file '" + log_path + "'");
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (log_fd >= 0) ::close(log_fd);
    fail("fork failed");
  }
  if (pid == 0) {
    // Child: redirect stdout/stderr to the log, then exec. On any failure
    // exit with 127 (the shell convention for "command not found").
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  if (log_fd >= 0) ::close(log_fd);

  Subprocess p;
  p.pid_ = pid;
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept {
  *this = std::move(other);
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0) {
      kill();
      wait();
    }
    pid_ = std::exchange(other.pid_, -1);
    exit_code_ = other.exit_code_;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ > 0) {
    kill();
    wait();
  }
}

bool Subprocess::running() {
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return true;
  if (r == static_cast<pid_t>(pid_)) {
    exit_code_ = decode_status(status);
    pid_ = -1;
  }
  return false;
}

int Subprocess::wait() {
  if (pid_ <= 0) return exit_code_;
  int status = 0;
  while (::waitpid(static_cast<pid_t>(pid_), &status, 0) < 0) {
    if (errno != EINTR) fail("waitpid failed");
  }
  exit_code_ = decode_status(status);
  pid_ = -1;
  return exit_code_;
}

void Subprocess::kill() {
  if (pid_ > 0) ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

std::string current_executable(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string{buf};
}

unsigned long current_process_id() {
  return static_cast<unsigned long>(::getpid());
}

#endif

}  // namespace varbench::campaign

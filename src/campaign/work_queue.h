// Filesystem-backed work queue for campaign shards. The state directory is
// the single source of truth — no sockets, no daemon — so any number of
// coordinator processes (on any machine sharing the directory) can
// cooperate, crash, and resume:
//
//   <dir>/queue/<task>.todo     claimable ticket {"task", "attempts"}
//   <dir>/claims/<task>.claim   claimed ticket (+ "owner"); mtime = heartbeat
//   <dir>/specs/<task>.json     the shard StudySpec the worker executes
//   <dir>/artifacts/<task>.json validated shard artifact (.part while landing)
//   <dir>/logs/<task>.log       worker stdout + stderr
//
// Claiming is one atomic rename(queue/X.todo → claims/X.claim): exactly one
// claimant's rename finds the source file, every other racer gets ENOENT and
// moves on. Claim owners bump the claim file's mtime as a heartbeat; a claim
// whose mtime is older than the staleness threshold is treated as crashed
// and renamed back into the queue (docs/campaigns.md).
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/io/json.h"

namespace varbench::campaign {

/// A queue ticket: how many launches the task has already consumed, and —
/// while claimed — who holds it.
struct Ticket {
  std::string task_id;
  std::size_t attempts = 0;
  std::string owner;
};

class WorkQueue {
 public:
  /// Opens (creating if needed) the state directory and its subdirectories.
  /// `artifact_ext` is the extension new shard artifacts are written with
  /// (".json" or ".vbt" — the campaign's --format). Throws io::JsonError
  /// when the directory cannot be created.
  explicit WorkQueue(std::string dir, std::string artifact_ext = ".json");

  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] std::string spec_path(const std::string& task_id) const;
  /// Where this campaign writes the task's artifact (preferred extension).
  [[nodiscard]] std::string artifact_path(const std::string& task_id) const;
  /// The task's artifact as it exists on disk, whichever format it was
  /// produced in: probes the preferred extension first, then the other —
  /// a JSON campaign resumed with --format binary (or vice versa) reuses
  /// every valid shard it already has. Returns artifact_path() when
  /// neither file exists.
  [[nodiscard]] std::string existing_artifact_path(
      const std::string& task_id) const;
  /// Where a worker writes before validation promotes it to artifact_path.
  [[nodiscard]] std::string partial_artifact_path(
      const std::string& task_id) const;
  [[nodiscard]] std::string log_path(const std::string& task_id) const;
  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string merged_dir() const;
  /// Where per-process trace files land (docs/tracing.md).
  [[nodiscard]] std::string trace_dir() const;
  [[nodiscard]] std::string trace_path(const std::string& task_id) const;

  /// Make the task claimable (atomic write of queue/<id>.todo). Overwrites
  /// an existing ticket for the same task.
  void enqueue(const Ticket& ticket);

  [[nodiscard]] bool is_queued(const std::string& task_id) const;
  [[nodiscard]] bool is_claimed(const std::string& task_id) const;

  /// Claim the first queued task (lexicographic ticket order) via atomic
  /// rename, stamping `owner` into the claim. Returns nullopt when the
  /// queue is empty or every ticket was claimed by a racer first.
  [[nodiscard]] std::optional<Ticket> try_claim(const std::string& owner);

  /// Refresh the claim's heartbeat (mtime). No-op if the claim is gone.
  void heartbeat(const Ticket& claimed) const;

  /// Heartbeat that also embeds a live progress snapshot: rewrites the
  /// claim body as the ticket fields plus a "status" object (which
  /// `varbench status` renders), refreshing mtime via the atomic-write
  /// rename. Readers that only look at mtime — stale-claim reclaim, old
  /// tooling — are unaffected, and parse_ticket ignores the extra key, so
  /// old state dirs and new ones interoperate both ways. No-op unless
  /// `claimed.owner` still owns the on-disk claim (same takeover guard as
  /// complete()).
  void heartbeat(const Ticket& claimed, const io::Json& status) const;

  /// Return a claimed task to the queue carrying `attempts` (the launches
  /// consumed so far) — the retry path.
  void release_for_retry(const Ticket& claimed, std::size_t attempts);

  /// Drop the claim of a finished task — but only if `claimed.owner` still
  /// owns it (a stale-claim takeover means the on-disk claim is now
  /// someone else's; their work must not lose its claim).
  void complete(const Ticket& claimed);

  /// Requeue every claim (except `exclude_owner`'s) whose heartbeat is
  /// older than `stale_after`. Returns the task ids reclaimed.
  std::vector<std::string> requeue_stale_claims(
      std::chrono::milliseconds stale_after, const std::string& exclude_owner);

  /// Atomic write (temp file + rename) — also used for artifacts/manifest.
  static void atomic_write(const std::string& path, std::string_view content);

 private:
  std::string dir_;
  std::string artifact_ext_;
};

}  // namespace varbench::campaign

#include "src/campaign/work_queue.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "src/campaign/subprocess.h"
#include "src/io/json.h"

namespace varbench::campaign {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kTodoSuffix = ".todo";
constexpr std::string_view kClaimSuffix = ".claim";

std::string ticket_text(const Ticket& t) {
  io::Json doc = io::Json::object();
  doc.set("task", io::Json{t.task_id});
  doc.set("attempts", io::Json{t.attempts});
  if (!t.owner.empty()) doc.set("owner", io::Json{t.owner});
  return doc.dump(2) + "\n";
}

Ticket parse_ticket(const std::string& path) {
  const io::Json doc = io::Json::parse(io::read_file(path));
  Ticket t;
  t.task_id = doc.at("task").as_string();
  t.attempts = static_cast<std::size_t>(doc.at("attempts").as_uint64());
  if (const io::Json* owner = doc.find("owner")) t.owner = owner->as_string();
  return t;
}

/// Strip a known suffix from a queue/claims file name; empty if absent.
std::string task_of(const fs::path& file, std::string_view suffix) {
  const std::string name = file.filename().string();
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return {};
  }
  return name.substr(0, name.size() - suffix.size());
}

/// Sorted task ids carrying `suffix` inside `dir` (missing dir → empty).
std::vector<std::string> list_tasks(const fs::path& dir,
                                    std::string_view suffix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{dir, ec}) {
    const std::string id = task_of(entry.path(), suffix);
    if (!id.empty()) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

WorkQueue::WorkQueue(std::string dir, std::string artifact_ext)
    : dir_{std::move(dir)}, artifact_ext_{std::move(artifact_ext)} {
  if (artifact_ext_ != ".json" && artifact_ext_ != ".vbt") {
    throw io::JsonError("campaign: unsupported artifact extension '" +
                        artifact_ext_ + "' (use .json or .vbt)");
  }
  std::error_code ec;
  for (const char* sub : {"", "queue", "claims", "specs", "artifacts", "logs",
                          "merged", "traces"}) {
    const fs::path p = fs::path{dir_} / sub;
    fs::create_directories(p, ec);
    if (ec && !fs::is_directory(p)) {
      throw io::JsonError("campaign: cannot create state directory '" +
                          p.string() + "': " + ec.message());
    }
  }
}

std::string WorkQueue::spec_path(const std::string& task_id) const {
  return (fs::path{dir_} / "specs" / (task_id + ".json")).string();
}

std::string WorkQueue::artifact_path(const std::string& task_id) const {
  return (fs::path{dir_} / "artifacts" / (task_id + artifact_ext_)).string();
}

std::string WorkQueue::existing_artifact_path(
    const std::string& task_id) const {
  const std::string preferred = artifact_path(task_id);
  if (fs::exists(preferred)) return preferred;
  const std::string other_ext = artifact_ext_ == ".json" ? ".vbt" : ".json";
  const std::string other =
      (fs::path{dir_} / "artifacts" / (task_id + other_ext)).string();
  return fs::exists(other) ? other : preferred;
}

std::string WorkQueue::partial_artifact_path(const std::string& task_id) const {
  return artifact_path(task_id) + ".part";
}

std::string WorkQueue::log_path(const std::string& task_id) const {
  return (fs::path{dir_} / "logs" / (task_id + ".log")).string();
}

std::string WorkQueue::manifest_path() const {
  return (fs::path{dir_} / "campaign.json").string();
}

std::string WorkQueue::merged_dir() const {
  return (fs::path{dir_} / "merged").string();
}

std::string WorkQueue::trace_dir() const {
  return (fs::path{dir_} / "traces").string();
}

std::string WorkQueue::trace_path(const std::string& task_id) const {
  return (fs::path{dir_} / "traces" / ("worker-" + task_id + ".trace.json"))
      .string();
}

void WorkQueue::atomic_write(const std::string& path,
                             std::string_view content) {
  // Unique per process (pid) and per call (counter): concurrent writers of
  // the same path must not collide on the temp file.
  static std::atomic<unsigned long> counter{0};
  const std::string tmp = path + ".tmp-" +
                          std::to_string(current_process_id()) + "-" +
                          std::to_string(counter.fetch_add(1));
  io::write_file(tmp, content);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw io::JsonError("campaign: cannot move '" + tmp + "' to '" + path +
                        "': " + ec.message());
  }
}

void WorkQueue::enqueue(const Ticket& ticket) {
  Ticket t = ticket;
  t.owner.clear();  // queued tickets have no owner
  atomic_write(
      (fs::path{dir_} / "queue" / (t.task_id + std::string{kTodoSuffix}))
          .string(),
      ticket_text(t));
}

bool WorkQueue::is_queued(const std::string& task_id) const {
  return fs::exists(fs::path{dir_} / "queue" /
                    (task_id + std::string{kTodoSuffix}));
}

bool WorkQueue::is_claimed(const std::string& task_id) const {
  return fs::exists(fs::path{dir_} / "claims" /
                    (task_id + std::string{kClaimSuffix}));
}

std::optional<Ticket> WorkQueue::try_claim(const std::string& owner) {
  for (const std::string& id : list_tasks(fs::path{dir_} / "queue",
                                          kTodoSuffix)) {
    const fs::path todo =
        fs::path{dir_} / "queue" / (id + std::string{kTodoSuffix});
    const fs::path claim =
        fs::path{dir_} / "claims" / (id + std::string{kClaimSuffix});
    std::error_code ec;
    fs::rename(todo, claim, ec);
    if (ec) continue;  // a racing claimant won this ticket; try the next
    Ticket t;
    try {
      t = parse_ticket(claim.string());
    } catch (const io::JsonError&) {
      t.task_id = id;  // corrupt ticket: claim it anyway, attempts reset
    }
    t.owner = owner;
    atomic_write(claim.string(), ticket_text(t));
    return t;
  }
  return std::nullopt;
}

void WorkQueue::heartbeat(const Ticket& claimed) const {
  const fs::path claim = fs::path{dir_} / "claims" /
                         (claimed.task_id + std::string{kClaimSuffix});
  std::error_code ec;
  fs::last_write_time(claim, fs::file_time_type::clock::now(), ec);
}

void WorkQueue::heartbeat(const Ticket& claimed, const io::Json& status) const {
  const fs::path claim = fs::path{dir_} / "claims" /
                         (claimed.task_id + std::string{kClaimSuffix});
  // Same ownership guard as complete(): after a stale-claim takeover the
  // on-disk file is someone else's live claim — never overwrite it.
  try {
    if (parse_ticket(claim.string()).owner != claimed.owner) return;
  } catch (const io::JsonError&) {
    return;  // gone or unreadable: nothing to refresh
  }
  io::Json doc = io::Json::object();
  doc.set("task", io::Json{claimed.task_id});
  doc.set("attempts", io::Json{claimed.attempts});
  if (!claimed.owner.empty()) doc.set("owner", io::Json{claimed.owner});
  doc.set("status", status);
  atomic_write(claim.string(), doc.dump(2) + "\n");
}

void WorkQueue::release_for_retry(const Ticket& claimed, std::size_t attempts) {
  // Drop the claim first: enqueueing while the claim still exists would
  // let a racer claim the new ticket by renaming it *onto* our claim file.
  complete(claimed);
  Ticket t = claimed;
  t.attempts = attempts;
  enqueue(t);
}

void WorkQueue::complete(const Ticket& claimed) {
  const fs::path claim = fs::path{dir_} / "claims" /
                         (claimed.task_id + std::string{kClaimSuffix});
  // Only remove a claim we still own: after a stale-claim takeover (we
  // stalled past the staleness threshold and another coordinator requeued
  // and re-claimed the task) the file on disk is someone else's live claim.
  if (!claimed.owner.empty()) {
    try {
      if (parse_ticket(claim.string()).owner != claimed.owner) return;
    } catch (const io::JsonError&) {
      // Unreadable or vanished: fall through; remove() is a no-op if gone.
    }
  }
  std::error_code ec;
  fs::remove(claim, ec);
}

std::vector<std::string> WorkQueue::requeue_stale_claims(
    std::chrono::milliseconds stale_after, const std::string& exclude_owner) {
  std::vector<std::string> reclaimed;
  const auto now = fs::file_time_type::clock::now();
  for (const std::string& id : list_tasks(fs::path{dir_} / "claims",
                                          kClaimSuffix)) {
    const fs::path claim =
        fs::path{dir_} / "claims" / (id + std::string{kClaimSuffix});
    std::error_code ec;
    const auto mtime = fs::last_write_time(claim, ec);
    if (ec) continue;  // vanished (completed) between listing and stat
    if (now - mtime < stale_after) continue;
    if (!exclude_owner.empty()) {
      try {
        if (parse_ticket(claim.string()).owner == exclude_owner) continue;
      } catch (const io::JsonError&) {
        // Unreadable claim: treat as crashed and reclaim below.
      }
    }
    // Atomic takeover: rename back into the queue. A racing reclaimer (or
    // the original owner completing) makes this fail — then it's theirs.
    const fs::path todo =
        fs::path{dir_} / "queue" / (id + std::string{kTodoSuffix});
    fs::rename(claim, todo, ec);
    if (!ec) reclaimed.push_back(id);
  }
  return reclaimed;
}

}  // namespace varbench::campaign

// varlint — the project's determinism-contract static analyzer
// (docs/static_analysis.md).
//
// Every guarantee varbench makes — byte-identical artifacts at any
// --threads, any shard split, either artifact encoding — rests on source
// invariants: all randomness flows through src/rngx, no wall-clock reads
// outside the provenance/heartbeat whitelist, no raw threads outside
// src/exec, no unordered-container iteration order leaking into output,
// and src/io errors that name a path/offset so corrupt artifacts are
// localizable. The e2e byte-diffs in CI catch a violation; varlint
// localizes it to a file:line before it ever reaches a campaign.
//
// Findings can be suppressed per line, but only with a reason:
//
//   do_risky_thing();  // varlint: allow(no-wallclock) -- heartbeat stamp
//
// A suppression comment alone on its line covers the next line. Stale or
// reason-less suppressions are themselves findings, so the suppression
// inventory cannot rot (rules `suppression-syntax`/`suppression-unused`).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/lint/lexer.h"

namespace varbench::lint {

struct Finding {
  std::string rule;
  std::string path;  // project-relative, '/'-separated
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  // non-empty iff suppressed
};

/// One registered rule, as shown by `varlint --list-rules`. The scope
/// strings are path prefixes on the project-relative path; an empty
/// `only_under` means the rule applies everywhere its `not_under` and
/// `headers_only` filters allow.
struct RuleInfo {
  std::string name;
  std::string summary;
  std::vector<std::string> only_under;
  std::vector<std::string> not_under;
  bool headers_only = false;
};

/// The full registry, in diagnostic order (includes the two suppression
/// meta-rules, which cannot themselves be suppressed).
[[nodiscard]] const std::vector<RuleInfo>& rule_registry();

/// Lint one translation unit. `rel_path` is the project-relative path
/// ('/'-separated) the scope filters match against — tests pass synthetic
/// paths to exercise per-directory rules on fixture sources. Findings come
/// back sorted by (line, rule), suppressions already applied.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& rel_path,
                                               std::string_view source);

[[nodiscard]] std::size_t count_unsuppressed(
    const std::vector<Finding>& findings);

/// "path:line: [rule] message" lines plus a summary line — the format CI
/// logs and editors both parse.
[[nodiscard]] std::string render_text(const std::vector<Finding>& findings,
                                      std::size_t files_scanned);

/// Deterministic JSON document ({"findings": [...], ...}) for tooling.
[[nodiscard]] std::string render_json(const std::vector<Finding>& findings,
                                      std::size_t files_scanned);

}  // namespace varbench::lint

#include "src/lint/lexer.h"

namespace varbench::lint {
namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// Raw-string encoding prefixes: the identifier immediately before a '"'
/// that switches the literal into raw mode.
bool is_raw_prefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_{src} {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      const std::size_t line = line_;
      const std::size_t col = col_;
      const std::size_t start = pos_;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        out.push_back(make(Token::Kind::kComment, start, line, col));
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        out.push_back(make(Token::Kind::kComment, start, line, col));
        continue;
      }
      if (c == '"') {
        lex_quoted('"');
        out.push_back(make(Token::Kind::kString, start, line, col));
        continue;
      }
      if (c == '\'') {
        lex_quoted('\'');
        out.push_back(make(Token::Kind::kChar, start, line, col));
        continue;
      }
      if (is_ident_start(c)) {
        while (pos_ < src_.size() && is_ident_char(src_[pos_])) advance();
        std::string_view ident = src_.substr(start, pos_ - start);
        if (is_raw_prefix(ident) && pos_ < src_.size() && src_[pos_] == '"') {
          lex_raw_string();
          out.push_back(make(Token::Kind::kString, start, line, col));
          continue;
        }
        // Ordinary encoding prefixes (L"x", u8"x") stay glued to their
        // literal so the string token carries the full lexeme.
        if ((ident == "L" || ident == "u" || ident == "U" || ident == "u8") &&
            pos_ < src_.size() &&
            (src_[pos_] == '"' || src_[pos_] == '\'')) {
          lex_quoted(src_[pos_]);
          out.push_back(make(src_[start + ident.size()] == '"'
                                 ? Token::Kind::kString
                                 : Token::Kind::kChar,
                             start, line, col));
          continue;
        }
        out.push_back(make(Token::Kind::kIdent, start, line, col));
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
        out.push_back(make(Token::Kind::kNumber, start, line, col));
        continue;
      }
      if (c == ':' && peek(1) == ':') {
        advance();
        advance();
        out.push_back(make(Token::Kind::kPunct, start, line, col));
        continue;
      }
      advance();
      out.push_back(make(Token::Kind::kPunct, start, line, col));
    }
    return out;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  Token make(Token::Kind kind, std::size_t start, std::size_t line,
             std::size_t col) const {
    return Token{kind, std::string{src_.substr(start, pos_ - start)}, line,
                 col};
  }

  void lex_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') advance();
  }

  void lex_block_comment() {
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        return;
      }
      advance();
    }
  }

  /// "..." or '...': backslash escapes honoured; an unescaped newline
  /// terminates the literal (malformed code should not swallow the file).
  void lex_quoted(char quote) {
    advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (c == '\n') return;
      advance();
      if (c == quote) return;
    }
  }

  /// R"delim( ... )delim" — the only literal form where banned names
  /// routinely hide across multiple lines (test fixtures embed whole
  /// source files this way).
  void lex_raw_string() {
    advance();  // opening '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      delim += src_[pos_];
      advance();
    }
    if (pos_ >= src_.size() || src_[pos_] != '(') return;  // malformed
    advance();  // '('
    const std::string close = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_[pos_] == ')' &&
          src_.compare(pos_, close.size(), close) == 0) {
        for (std::size_t i = 0; i < close.size(); ++i) advance();
        return;
      }
      advance();
    }
  }

  /// Loose pp-number: digits, letters, '.', digit separators, and signed
  /// exponents. Over-accepts relative to the standard, which is fine —
  /// rules never inspect number internals.
  void lex_number() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        const bool exponent = (c == 'e' || c == 'E' || c == 'p' || c == 'P');
        advance();
        if (exponent && (peek(0) == '+' || peek(0) == '-')) advance();
        continue;
      }
      break;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view src) { return Lexer{src}.run(); }

}  // namespace varbench::lint

// Token-level C++ lexer for varlint (docs/static_analysis.md).
//
// This is deliberately not a parser: varlint's determinism-contract rules
// only need to see identifiers, punctuation, and comments with accurate
// line numbers, while never being fooled by banned names appearing inside
// string literals, raw strings, char literals, or comments. The lexer
// therefore recognizes exactly the C++ lexical shapes that matter for
// that guarantee — line/block comments, "..." strings with escapes,
// R"delim(...)delim" raw strings (with encoding prefixes), '...' char
// literals, numbers with digit separators — and emits everything else as
// identifier or punctuation tokens.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace varbench::lint {

struct Token {
  enum class Kind : int {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literals, digit separators included
    kString,   // "..." and R"delim(...)delim", full literal text
    kChar,     // '...'
    kPunct,    // single-char punctuation, plus "::"
    kComment,  // // and /* */, full text including the markers
  };

  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 1;  // 1-based line of the token's first character
  std::size_t col = 1;   // 1-based column of the token's first character
};

/// Lex an entire translation unit. Never throws on malformed input:
/// unterminated literals/comments extend to end of input, so lint rules
/// degrade gracefully on half-written code.
[[nodiscard]] std::vector<Token> lex(std::string_view src);

}  // namespace varbench::lint

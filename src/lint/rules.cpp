// Rule implementations and the suppression engine for varlint
// (docs/static_analysis.md maps each rule onto the determinism contract).
#include <algorithm>
#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "src/io/json.h"
#include "src/lint/lint.h"

namespace varbench::lint {
namespace {

// ------------------------------------------------------------ token helpers

using Tokens = std::vector<Token>;

bool is_ident(const Tokens& t, std::size_t i, std::string_view text) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent && t[i].text == text;
}

bool is_punct(const Tokens& t, std::size_t i, std::string_view text) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text == text;
}

bool any_of(std::string_view text, std::initializer_list<std::string_view> s) {
  for (const std::string_view v : s) {
    if (text == v) return true;
  }
  return false;
}

std::string lower(std::string_view text) {
  std::string out{text};
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// The per-file view a rule checks: comment tokens are stripped (comments
/// may name anything), suppression handling happens afterwards.
struct FileCtx {
  const std::string& rel;
  const Tokens& code;
  bool is_header = false;
};

void add(std::vector<Finding>& out, std::string_view rule, std::size_t line,
         std::string message) {
  Finding f;
  f.rule = std::string{rule};
  f.line = line;
  f.message = std::move(message);
  out.push_back(std::move(f));
}

// ------------------------------------------------------------------- rules

constexpr std::string_view kNoRawRandom = "no-raw-random";
constexpr std::string_view kNoWallclock = "no-wallclock";
constexpr std::string_view kNoRawThread = "no-raw-thread";
constexpr std::string_view kNoUnorderedIter = "no-unordered-iter";
constexpr std::string_view kErrorNamesPath = "error-names-path";
constexpr std::string_view kHeaderHygiene = "header-hygiene";
constexpr std::string_view kSuppressionSyntax = "suppression-syntax";
constexpr std::string_view kSuppressionUnused = "suppression-unused";

/// no-raw-random: every random draw must derive from a src/rngx stream —
/// a std:: engine or C rand() call is seeded ad hoc and breaks the
/// seed+tag → stream contract (docs/determinism.md §1).
void check_no_raw_random(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& s = t[i].text;
    const bool c_func = any_of(s, {"rand", "srand", "rand_r", "drand48",
                                   "lrand48", "srand48"}) &&
                        is_punct(t, i + 1, "(");
    const bool std_type =
        any_of(s, {"random_device", "mt19937", "mt19937_64", "minstd_rand",
                   "minstd_rand0", "default_random_engine", "knuth_b",
                   "ranlux24", "ranlux48", "seed_seq"});
    const bool distribution = s.size() > 13 &&
                              s.rfind("_distribution") == s.size() - 13;
    if (c_func || std_type || distribution) {
      add(out, kNoRawRandom, t[i].line,
          "raw RNG '" + s +
              "': all randomness must derive from src/rngx streams "
              "(derive_seed / Rng::split), so every draw is reproducible "
              "from (seed, tag) alone");
    }
  }
}

/// no-wallclock: a wall-clock read anywhere near an artifact path makes
/// output depend on when it ran. Timing belongs to the campaign
/// heartbeat/provenance layer (src/campaign/), the metrics timers
/// (src/metrics/ — the ScopedTimer/Stopwatch helpers every instrumented
/// subsystem goes through, docs/metrics.md), the trace stopwatch
/// (src/trace/stopwatch.h — the one clock site of the span layer,
/// docs/tracing.md), and bench/ harnesses.
void check_no_wallclock(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if (any_of(s, {"gettimeofday", "clock_gettime", "timespec_get",
                   "localtime", "gmtime", "mktime", "ftime"})) {
      add(out, kNoWallclock, t[i].line,
          "wall-clock read '" + s +
              "' outside the provenance/heartbeat whitelist "
              "(src/metrics/, src/campaign/, src/trace/stopwatch.h, bench/)");
      continue;
    }
    if (any_of(s, {"time", "clock"}) && is_punct(t, i + 1, "(") &&
        !(i > 0 && is_punct(t, i - 1, "."))) {
      add(out, kNoWallclock, t[i].line,
          "wall-clock read '" + s +
              "()' outside the provenance/heartbeat whitelist "
              "(src/metrics/, src/campaign/, src/trace/stopwatch.h, bench/)");
      continue;
    }
    if (s == "now" && i > 0 && is_punct(t, i - 1, "::")) {
      const std::string qualifier = i >= 2 ? t[i - 2].text : "";
      add(out, kNoWallclock, t[i].line,
          "wall-clock read '" + qualifier +
              "::now()' outside the provenance/heartbeat whitelist "
              "(src/metrics/, src/campaign/, src/trace/stopwatch.h, bench/)");
    }
  }
}

/// no-raw-thread: parallelism must go through src/exec so per-index RNG
/// streams and index-ordered reductions keep results thread-count
/// invariant (docs/determinism.md §2). std::thread::hardware_concurrency
/// and std::this_thread are queries, not spawns, and stay legal.
void check_no_raw_thread(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& s = t[i].text;
    // `#include <thread>` itself stays legal: hardware_concurrency (the
    // one whitelisted member) lives there.
    const bool in_include =
        i >= 2 && is_punct(t, i - 1, "<") && is_ident(t, i - 2, "include");
    if (s == "thread" && !in_include &&
        !(is_punct(t, i + 1, "::") &&
          is_ident(t, i + 2, "hardware_concurrency"))) {
      add(out, kNoRawThread, t[i].line,
          "raw 'thread' outside src/exec: spawn work through ThreadPool / "
          "parallel_for / parallel_replicate to keep thread-count "
          "invariance");
      continue;
    }
    if (any_of(s, {"jthread", "pthread_create", "pthread_t"})) {
      add(out, kNoRawThread, t[i].line,
          "raw thread primitive '" + s +
              "' outside src/exec: use the exec layer instead");
      continue;
    }
    if (s == "async" && i >= 2 && is_punct(t, i - 1, "::") &&
        is_ident(t, i - 2, "std")) {
      add(out, kNoRawThread, t[i].line,
          "std::async outside src/exec schedules on an unmanaged thread; "
          "use the exec layer instead");
      continue;
    }
    if (s == "omp" && i > 0 && is_ident(t, i - 1, "pragma")) {
      add(out, kNoRawThread, t[i].line,
          "OpenMP pragma outside src/exec: its scheduling is invisible to "
          "the ExecContext nesting guard");
    }
  }
}

/// no-unordered-iter: iterating an unordered container feeds hash-order —
/// which varies across libstdc++ versions and pointer layouts — into
/// whatever is built from the loop. Declarations are tracked per file and
/// every range-for / .begin() over one is flagged.
void check_no_unordered_iter(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        !any_of(t[i].text, {"unordered_map", "unordered_set",
                            "unordered_multimap", "unordered_multiset"})) {
      continue;
    }
    std::size_t j = i + 1;
    if (is_punct(t, j, "<")) {
      std::size_t depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (is_punct(t, j, "<")) ++depth;
        if (is_punct(t, j, ">")) --depth;
        ++j;
      }
    }
    while (is_punct(t, j, "&") || is_punct(t, j, "*") ||
           is_ident(t, j, "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::Kind::kIdent) {
      vars.push_back(t[j].text);
    }
  }
  if (vars.empty()) return;
  const auto is_tracked = [&vars](const std::string& name) {
    return std::find(vars.begin(), vars.end(), name) != vars.end();
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: `for (... : container)`.
    if (is_punct(t, i, ":") && i + 2 < t.size() &&
        t[i + 1].kind == Token::Kind::kIdent && is_tracked(t[i + 1].text) &&
        is_punct(t, i + 2, ")")) {
      add(out, kNoUnorderedIter, t[i + 1].line,
          "iteration over unordered container '" + t[i + 1].text +
              "' has unspecified order, which leaks into anything built "
              "from the loop — iterate a sorted copy or use "
              "std::map/std::vector");
    }
    // Iterator loops: `container.begin()` and friends.
    if (t[i].kind == Token::Kind::kIdent && is_tracked(t[i].text) &&
        is_punct(t, i + 1, ".") && i + 3 < t.size() &&
        any_of(t[i + 2].text, {"begin", "cbegin", "rbegin", "crbegin"}) &&
        is_punct(t, i + 3, "(")) {
      add(out, kNoUnorderedIter, t[i].line,
          "iterator walk over unordered container '" + t[i].text +
              "' has unspecified order — iterate a sorted copy or use "
              "std::map/std::vector");
    }
  }
}

/// error-names-path: an I/O error that cannot name what it was reading is
/// undebuggable at campaign scale. Every throw in src/io must interpolate
/// a path / offset / key / offending value into the error.
void check_error_names_path(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "throw")) continue;
    std::size_t end = i + 1;
    bool has_context = false;
    while (end < t.size() && !is_punct(t, end, ";")) {
      if (t[end].kind == Token::Kind::kIdent) {
        const std::string low = lower(t[end].text);
        const bool context_name =
            low.find("path") != std::string::npos ||
            low.find("offset") != std::string::npos ||
            low.find("line") != std::string::npos ||
            low.find("col") != std::string::npos ||
            low.find("key") != std::string::npos ||
            low.find("file") != std::string::npos ||
            low.find("byte") != std::string::npos ||
            low.find("domain") != std::string::npos ||
            low.find("where") != std::string::npos ||
            low.find("name") != std::string::npos;
        if (context_name || any_of(t[end].text, {"dump", "strerror", "what",
                                                 "errno", "value"})) {
          has_context = true;
        }
      }
      ++end;
    }
    if (end == i + 1) continue;  // bare `throw;` rethrows an error that
                                 // already carries its context
    if (!has_context) {
      add(out, kErrorNamesPath, t[i].line,
          "throw in src/io carries no path/offset/key context — construct "
          "the error with the file path, byte offset, JSON key, or "
          "offending value so corrupt input is localizable");
    }
  }
}

/// header-hygiene: #pragma once first, and no `using namespace` — a
/// header-level using-directive changes name lookup in every includer.
void check_header_hygiene(const FileCtx& f, std::vector<Finding>& out) {
  const Tokens& t = f.code;
  if (!(is_punct(t, 0, "#") && is_ident(t, 1, "pragma") &&
        is_ident(t, 2, "once"))) {
    add(out, kHeaderHygiene, t.empty() ? 1 : t[0].line,
        "header must open with #pragma once (before any non-comment "
        "token)");
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is_ident(t, i, "using") && is_ident(t, i + 1, "namespace")) {
      add(out, kHeaderHygiene, t[i].line,
          "'using namespace' in a header changes name lookup in every "
          "includer — qualify names or use scoped aliases");
    }
  }
}

// ---------------------------------------------------------------- registry

struct Rule {
  RuleInfo info;
  void (*check)(const FileCtx&, std::vector<Finding>&) = nullptr;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {{std::string{kNoRawRandom},
        "bans std:: engines/distributions and C rand(); randomness must "
        "flow through src/rngx (seed+tag -> stream)",
        {},
        {"src/rngx/"},
        false},
       &check_no_raw_random},
      {{std::string{kNoWallclock},
        "bans time()/clock_gettime/chrono ::now() so artifact bytes cannot "
        "depend on when they were produced",
        {},
        {"src/metrics/", "src/campaign/", "src/trace/stopwatch.h",
         "bench/"},
        false},
       &check_no_wallclock},
      {{std::string{kNoRawThread},
        "bans std::thread/std::async/OpenMP; parallelism must go through "
        "src/exec for thread-count invariance",
        {},
        {"src/exec/"},
        false},
       &check_no_raw_thread},
      {{std::string{kNoUnorderedIter},
        "flags range-for/iterator loops over unordered_{map,set}; hash "
        "order leaks into artifacts",
        {},
        {},
        false},
       &check_no_unordered_iter},
      {{std::string{kErrorNamesPath},
        "every throw in src/io must carry a path/offset/key so corrupt "
        "artifacts are localizable",
        {"src/io/"},
        {},
        false},
       &check_error_names_path},
      {{std::string{kHeaderHygiene},
        "headers open with #pragma once and never say 'using namespace'",
        {},
        {},
        true},
       &check_header_hygiene},
      // Meta-rules: emitted by the suppression engine itself; they keep
      // the suppression inventory honest and cannot be suppressed.
      {{std::string{kSuppressionSyntax},
        "suppression comments must parse and carry a reason: // varlint: "
        "allow(<rule>) -- <reason>",
        {},
        {},
        false},
       nullptr},
      {{std::string{kSuppressionUnused},
        "a suppression whose rule no longer fires on its line is stale and "
        "must be removed",
        {},
        {},
        false},
       nullptr},
  };
  return kRules;
}

bool known_rule(std::string_view name) {
  for (const Rule& r : rules()) {
    if (r.info.name == name) return true;
  }
  return false;
}

bool in_scope(const RuleInfo& info, const std::string& rel, bool is_header) {
  if (info.headers_only && !is_header) return false;
  for (const std::string& prefix : info.not_under) {
    if (rel.rfind(prefix, 0) == 0) return false;
  }
  if (info.only_under.empty()) return true;
  for (const std::string& prefix : info.only_under) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// ------------------------------------------------------------ suppressions

struct Suppression {
  std::size_t comment_line = 0;
  std::size_t target_line = 0;
  std::vector<std::string> rule_names;
  std::string reason;
  std::string error;  // non-empty -> malformed, `reason`/`rule_names` moot
  bool used = false;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse one comment that mentions "varlint:". Grammar:
///   varlint: allow(<rule>[, <rule>...]) -- <reason>
Suppression parse_suppression(const Token& comment, std::size_t marker_pos) {
  Suppression sup;
  sup.comment_line = comment.line;
  std::string_view text{comment.text};
  // Strip a block comment's closing marker so it cannot end up in the
  // reason text.
  if (text.size() >= 2 && text.substr(text.size() - 2) == "*/") {
    text.remove_suffix(2);
  }
  std::string_view rest = trim(text.substr(marker_pos + 8));  // "varlint:"
  if (rest.rfind("allow(", 0) != 0) {
    sup.error = "expected 'allow(<rule>[, <rule>...])' after 'varlint:'";
    return sup;
  }
  rest.remove_prefix(6);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    sup.error = "unterminated allow(...) rule list";
    return sup;
  }
  std::string_view list = rest.substr(0, close);
  rest = trim(rest.substr(close + 1));
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view item = trim(list.substr(0, comma));
    if (!item.empty()) sup.rule_names.emplace_back(item);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  if (sup.rule_names.empty()) {
    sup.error = "allow() names no rules";
    return sup;
  }
  for (const std::string& name : sup.rule_names) {
    if (!known_rule(name)) {
      sup.error = "unknown rule '" + name + "' (see varlint --list-rules)";
      return sup;
    }
    if (name == kSuppressionSyntax || name == kSuppressionUnused) {
      sup.error = "meta-rule '" + name + "' cannot be suppressed";
      return sup;
    }
  }
  if (rest.rfind("--", 0) != 0 || trim(rest.substr(2)).empty()) {
    sup.error =
        "suppression carries no justification (write: -- <why this line is "
        "legitimately exempt>)";
    return sup;
  }
  sup.reason = std::string{trim(rest.substr(2))};
  return sup;
}

std::vector<Suppression> collect_suppressions(const Tokens& all,
                                              const Tokens& code) {
  std::vector<Suppression> sups;
  for (const Token& tok : all) {
    if (tok.kind != Token::Kind::kComment) continue;
    // A suppression is a plain comment whose content *starts* with the
    // marker. Doc comments (///, //!, /**, /*!) never suppress, and a
    // marker buried mid-comment is prose about varlint, not a directive —
    // so documentation can show the syntax without enacting it.
    std::string_view content{tok.text};
    content.remove_prefix(2);  // "//" or "/*"
    if (!content.empty() && (content.front() == '/' ||
                             content.front() == '!' ||
                             content.front() == '*')) {
      continue;
    }
    while (!content.empty() &&
           (content.front() == ' ' || content.front() == '\t')) {
      content.remove_prefix(1);
    }
    if (content.rfind("varlint:", 0) != 0) continue;
    const std::size_t marker =
        static_cast<std::size_t>(content.data() - tok.text.data());
    Suppression sup = parse_suppression(tok, marker);
    // A comment sharing its line with code covers that line; a standalone
    // comment covers the next line of code after it, so a long reason can
    // wrap onto continuation comment lines.
    bool shares_line = false;
    for (const Token& c : code) {
      if (c.line == tok.line) {
        shares_line = true;
        break;
      }
      if (c.line > tok.line) break;
    }
    if (shares_line) {
      sup.target_line = tok.line;
    } else {
      const std::size_t newlines = static_cast<std::size_t>(
          std::count(tok.text.begin(), tok.text.end(), '\n'));
      sup.target_line = tok.line + newlines + 1;
      for (const Token& c : code) {
        if (c.line >= sup.target_line) {
          sup.target_line = c.line;
          break;
        }
      }
    }
    sups.push_back(std::move(sup));
  }
  return sups;
}

}  // namespace

// ------------------------------------------------------------- public API

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kInfos = [] {
    std::vector<RuleInfo> out;
    for (const Rule& r : rules()) out.push_back(r.info);
    return out;
  }();
  return kInfos;
}

std::vector<Finding> lint_source(const std::string& rel_path,
                                 std::string_view source) {
  const Tokens all = lex(source);
  Tokens code;
  code.reserve(all.size());
  for (const Token& tok : all) {
    if (tok.kind != Token::Kind::kComment) code.push_back(tok);
  }
  const bool header =
      rel_path.size() >= 2 &&
      (rel_path.rfind(".h") == rel_path.size() - 2 ||
       (rel_path.size() >= 4 &&
        rel_path.rfind(".hpp") == rel_path.size() - 4));
  const FileCtx ctx{rel_path, code, header};

  std::vector<Finding> findings;
  for (const Rule& rule : rules()) {
    if (rule.check != nullptr && in_scope(rule.info, rel_path, header)) {
      rule.check(ctx, findings);
    }
  }

  std::vector<Suppression> sups = collect_suppressions(all, code);
  for (Finding& f : findings) {
    for (Suppression& sup : sups) {
      if (sup.error.empty() && sup.target_line == f.line &&
          std::find(sup.rule_names.begin(), sup.rule_names.end(), f.rule) !=
              sup.rule_names.end()) {
        f.suppressed = true;
        f.suppress_reason = sup.reason;
        sup.used = true;
        break;
      }
    }
  }
  for (const Suppression& sup : sups) {
    if (!sup.error.empty()) {
      add(findings, kSuppressionSyntax, sup.comment_line,
          "malformed suppression: " + sup.error);
    } else if (!sup.used) {
      std::string names;
      for (const std::string& name : sup.rule_names) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      add(findings, kSuppressionUnused, sup.comment_line,
          "suppression for '" + names + "' matched no finding on line " +
              std::to_string(sup.target_line) + " — remove it");
    }
  }

  for (Finding& f : findings) f.path = rel_path;
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

std::size_t count_unsuppressed(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  std::string out;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    out += f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out += "varlint: " + std::to_string(unsuppressed) +
         " unsuppressed finding(s), " +
         std::to_string(findings.size() - unsuppressed) + " suppressed, " +
         std::to_string(files_scanned) + " file(s) scanned\n";
  return out;
}

std::string render_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  io::Json doc = io::Json::object();
  doc.set("tool", "varlint");
  doc.set("files_scanned", files_scanned);
  doc.set("unsuppressed", count_unsuppressed(findings));
  doc.set("suppressed", findings.size() - count_unsuppressed(findings));
  io::Json arr = io::Json::array();
  for (const Finding& f : findings) {
    io::Json item = io::Json::object();
    item.set("path", f.path);
    item.set("line", f.line);
    item.set("rule", f.rule);
    item.set("message", f.message);
    item.set("suppressed", f.suppressed);
    if (f.suppressed) item.set("reason", f.suppress_reason);
    arr.push_back(std::move(item));
  }
  doc.set("findings", std::move(arr));
  return doc.dump(2) + "\n";
}

}  // namespace varbench::lint

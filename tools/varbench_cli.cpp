// varbench — unified command-line front-end.
//
//   varbench tasks                         list registered case studies
//   varbench plan   [--gamma G] [--alpha A] [--beta B]
//   varbench study  <task> [--reps N] [--scale S]
//   varbench compare <task> [--runs N] [--scale S] [--lr-mult M] [--gamma G]
//   varbench hpo    <task> [--algo NAME] [--budget T] [--scale S]
//   varbench audit  <task> [--scale S]
//
// Each subcommand wraps one of the paper's workflows; see README.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/varbench.h"

namespace {

using namespace varbench;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        a.options[key] = argv[++i];
      } else {
        a.options[key] = "1";
      }
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

double opt_double(const Args& a, const std::string& key, double fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::atof(it->second.c_str());
}

std::size_t opt_size(const Args& a, const std::string& key,
                     std::size_t fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end()
             ? fallback
             : static_cast<std::size_t>(std::atol(it->second.c_str()));
}

std::string opt_string(const Args& a, const std::string& key,
                       const std::string& fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : it->second;
}

// --threads N: worker count for the Monte-Carlo hot paths (0 = all hardware
// threads, default 1 = serial). Results are identical for every value.
exec::ExecContext opt_exec(const Args& a) {
  return exec::ExecContext{opt_size(a, "threads", 1)};
}

int cmd_tasks() {
  std::printf("registered case studies:\n");
  for (const auto& id : casestudies::case_study_ids()) {
    const auto& c = casestudies::calibration_for(id);
    std::printf("  %-18s %-18s metric=%-9s paper n'=%zu\n", id.c_str(),
                c.paper_task.c_str(), c.metric.c_str(), c.paper_test_size);
  }
  return 0;
}

int cmd_plan(const Args& a) {
  const double gamma = opt_double(a, "gamma", 0.75);
  const double alpha = opt_double(a, "alpha", 0.05);
  const double beta = opt_double(a, "beta", 0.05);
  const std::size_t n = stats::noether_sample_size(gamma, alpha, beta);
  std::printf(
      "gamma=%.2f alpha=%.2f beta=%.2f -> run each algorithm %zu times "
      "(paired)\n",
      gamma, alpha, beta, n);
  return 0;
}

int cmd_study(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "usage: varbench study <task> [--reps N] [--scale S]\n");
    return 2;
  }
  const auto cs = casestudies::make_case_study(a.positional[0],
                                               opt_double(a, "scale", 0.25));
  core::VarianceStudyConfig cfg;
  cfg.repetitions = opt_size(a, "reps", 20);
  cfg.hpo_algorithms = {"random_search"};
  cfg.hpo_repetitions = std::max<std::size_t>(3, cfg.repetitions / 4);
  cfg.hpo_budget = opt_size(a, "budget", 10);
  cfg.exec = opt_exec(a);
  rngx::Rng master{opt_size(a, "seed", 42)};
  const auto study = core::run_variance_study(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, master);
  const double boot = study.bootstrap_std();
  std::printf("%-22s %10s %10s %14s\n", "source", "mean", "std",
              "std/bootstrap");
  for (const auto& row : study.rows) {
    std::printf("%-22s %10.4f %10.4f %14.2f\n", row.label.c_str(), row.mean,
                row.stddev, boot > 0.0 ? row.stddev / boot : 0.0);
  }
  return 0;
}

int cmd_compare(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench compare <task> [--runs N] [--scale S] "
                 "[--lr-mult M] [--gamma G]\n");
    return 2;
  }
  const auto cs = casestudies::make_case_study(a.positional[0],
                                               opt_double(a, "scale", 0.25));
  const double gamma = opt_double(a, "gamma", 0.75);
  const std::size_t runs =
      opt_size(a, "runs", stats::noether_sample_size(gamma, 0.05, 0.2));
  const double mult = opt_double(a, "lr-mult", 0.2);

  auto params_a = cs.pipeline->default_params();
  auto params_b = params_a;
  if (params_b.count("learning_rate") != 0) {
    params_b["learning_rate"] *= mult;
  } else if (params_b.count("weight_decay") != 0) {
    params_b["weight_decay"] = std::min(1.0, params_b["weight_decay"] * 100.0);
  }
  std::printf("A = defaults; B = defaults with lr x %.2f; %zu paired runs\n",
              mult, runs);
  rngx::Rng master{opt_size(a, "seed", 42)};
  // Paired runs are independent given per-run streams; fan them out.
  struct PairedMeasure {
    double a = 0.0;
    double b = 0.0;
  };
  const auto measures = exec::parallel_replicate<PairedMeasure>(
      opt_exec(a), runs, master, "compare",
      [&](std::size_t, rngx::Rng& run_rng) {
        const auto seeds = rngx::VariationSeeds::random(run_rng);
        return PairedMeasure{
            core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                      params_a, seeds),
            core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                      params_b, seeds)};
      });
  std::vector<double> pa;
  std::vector<double> pb;
  for (const auto& m : measures) {
    pa.push_back(m.a);
    pb.push_back(m.b);
  }
  auto rng = master.split("test");
  const auto r = stats::test_probability_of_outperforming(pa, pb, rng, gamma);
  std::printf("mean A = %.4f, mean B = %.4f\n", stats::mean(pa),
              stats::mean(pb));
  std::printf("P(A>B) = %.3f, CI [%.3f, %.3f], gamma = %.2f\n",
              r.p_a_greater_b, r.ci.lower, r.ci.upper, gamma);
  std::printf("conclusion: %s\n",
              std::string(stats::to_string(r.conclusion)).c_str());
  return 0;
}

int cmd_hpo(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench hpo <task> [--algo NAME] [--budget T] "
                 "[--scale S]\n");
    return 2;
  }
  const auto cs = casestudies::make_case_study(a.positional[0],
                                               opt_double(a, "scale", 0.25));
  const auto algo =
      hpo::make_hpo_algorithm(opt_string(a, "algo", "bayes_opt"));
  core::HpoRunConfig cfg;
  cfg.algorithm = algo.get();
  cfg.budget = opt_size(a, "budget", 20);
  cfg.exec = opt_exec(a);
  rngx::VariationSeeds seeds;
  seeds.hpo = opt_size(a, "seed", 42);
  core::FitCounter fits;
  const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, seeds, &fits);
  std::printf("%s on %s: final test %s = %.4f (%zu fits)\n",
              std::string(algo->name()).c_str(), a.positional[0].c_str(),
              std::string(ml::to_string(cs.pipeline->metric())).c_str(), perf,
              fits.fits.load());
  return 0;
}

int cmd_audit(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr, "usage: varbench audit <task> [--scale S]\n");
    return 2;
  }
  const auto cs = casestudies::make_case_study(a.positional[0],
                                               opt_double(a, "scale", 0.15));
  const auto cfg = cs.pipeline->resolve_config(cs.pipeline->default_params());
  ml::ReproAuditConfig audit;
  audit.num_seeds = 2;
  audit.num_repeats = 2;
  const auto report = ml::audit_reproducibility(*cs.pool, cfg, audit);
  std::printf("deterministic: %s, resumable: %s\n",
              report.deterministic ? "yes" : "NO",
              report.resumable ? "yes" : "NO");
  for (const auto& f : report.failures) std::printf("  finding: %s\n",
                                                    f.c_str());
  std::printf("audit %s\n", report.passed() ? "PASSED" : "FAILED");
  // pascalvoc_fcn intentionally injects numerical noise and must fail.
  return report.passed() ? 0 : 1;
}

void usage() {
  std::printf(
      "varbench — variance-aware ML benchmarking (MLSys 2021 reproduction)\n"
      "subcommands:\n"
      "  tasks                       list case studies\n"
      "  plan    [--gamma --alpha --beta]\n"
      "  study   <task> [--reps --scale --budget --seed --threads]\n"
      "  compare <task> [--runs --scale --lr-mult --gamma --seed --threads]\n"
      "  hpo     <task> [--algo --budget --scale --seed --threads]\n"
      "  audit   <task> [--scale]\n"
      "--threads N runs the Monte-Carlo loops on N threads (0 = all cores);\n"
      "results are bit-identical for every N (see docs/determinism.md).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "tasks") return cmd_tasks();
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "study") return cmd_study(args);
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "hpo") return cmd_hpo(args);
    if (cmd == "audit") return cmd_audit(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}

// varbench — unified command-line front-end, spec-driven.
//
// The primary interface is experiments-as-data (docs/study_api.md):
//
//   varbench run   <spec.json> [--set key=val ...] [--shard i/N]
//                  [--threads N] [--out out.json] [--csv out.csv]
//                  [--canonical]
//   varbench merge <shard.json | shard-dir> ... [--out merged.json]
//                  [--csv merged.csv]
//   varbench campaign <spec.json> --dir <state-dir> [--shards N]
//                  [--workers K] [--resume] [--max-retries R]
//   varbench report <artifact.json | dir> [--spec r.json] [--format F]
//                  [--compare other.json] [--threads N] [--out file]
//
// `run` executes a serialized StudySpec and writes the canonical
// ResultTable artifact; `--shard i/N` computes slice i of N (bit-identical
// to the same slice of the unsharded run; merging all N slices with
// `merge` reproduces the unsharded artifact exactly). `campaign` fans a
// spec (or a JSON array of specs) out over a pool of `varbench run` worker
// subprocesses through a resumable state directory (docs/campaigns.md).
// `report` derives every summary statistic (mean/std, bootstrap CIs,
// normality, P(A>B) with --compare) from any artifact — no producing spec
// needed — and renders it as text/markdown/CSV/JSON (docs/reporting.md).
//
// The legacy subcommands are thin spec builders over the same engine and
// print the same numbers they always did:
//
//   varbench tasks                         list registered case studies
//   varbench plan   [--gamma G] [--alpha A] [--beta B]
//   varbench study  <task> [--reps N] [--scale S] ...
//   varbench compare <task> [--runs N] [--lr-mult M] ...
//   varbench hpo    <task> [--algo NAME] [--budget T] ...
//   varbench audit  <task> [--scale S]
//
// study/compare/hpo accept --out/--csv (write the artifact) and
// --dump-spec FILE (write the equivalent spec and exit without running).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_spec.h"
#include "src/campaign/campaign.h"
#include "src/campaign/status.h"
#include "src/campaign/subprocess.h"
#include "src/io/json.h"
#include "src/metrics/gate.h"
#include "src/metrics/metrics.h"
#include "src/metrics/table.h"
#include "src/report/artifact.h"
#include "src/report/render.h"
#include "src/report/report_spec.h"
#include "src/report/summary.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"
#include "src/trace/file.h"
#include "src/trace/stitch.h"
#include "src/trace/trace.h"
#include "src/varbench.h"
#include "src/version.h"

namespace {

using namespace varbench;

/// argv[0], kept for campaign worker spawning (fallback when /proc/self/exe
/// is unavailable).
std::string g_argv0 = "varbench";

// ------------------------------------------------------------ arguments

struct Args {
  std::vector<std::string> positional;
  // In command-line order; repeated flags (--set) keep every occurrence.
  std::vector<std::pair<std::string, std::string>> options;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    const std::string* last = nullptr;
    for (const auto& [k, v] : options) {
      if (k == key) last = &v;
    }
    return last;
  }

  [[nodiscard]] std::vector<std::string> all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : options) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
};

/// Flags that never consume the following token as a value.
const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags{
      "canonical", "gate",   "help",  "json",    "list", "no-append",
      "plan-only", "resume", "summary", "trace", "watch"};
  return flags;
}

/// `--key value`, `--key=value`, and bare boolean `--key`. A following
/// token is a value unless it is itself a long flag (starts with "--"), so
/// negative numbers (`--lr-mult -0.5`) parse as values.
Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      a.positional.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      a.options.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      continue;
    }
    const std::string key = arg.substr(2);
    const bool has_value = i + 1 < argc &&
                           std::strncmp(argv[i + 1], "--", 2) != 0 &&
                           boolean_flags().count(key) == 0;
    a.options.emplace_back(key, has_value ? argv[++i] : "1");
  }
  return a;
}

/// Reject typo'd flags loudly: a misspelled --shard must not silently run
/// the full unsharded study (mirrors the spec layer's unknown-key errors).
void require_known_flags(const Args& a,
                         std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : a.options) {
    bool ok = false;
    for (const std::string_view k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string list;
      for (const std::string_view k : known) {
        if (!list.empty()) list += ", ";
        list += "--" + std::string{k};
      }
      throw std::invalid_argument(
          "unknown flag '--" + key + "'" +
          (list.empty() ? " (this subcommand takes no flags)"
                        : " (known flags: " + list + ")"));
    }
  }
}

[[noreturn]] void bad_option(const std::string& key, const std::string& value,
                             const char* wanted) {
  throw std::invalid_argument("--" + key + " expects " + wanted + ", got '" +
                              value + "'");
}

double opt_double(const Args& a, const std::string& key, double fallback) {
  const std::string* v = a.find(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v->c_str(), &end);
  if (v->empty() || end != v->c_str() + v->size() || errno == ERANGE) {
    bad_option(key, *v, "a number");
  }
  return parsed;
}

std::size_t opt_size(const Args& a, const std::string& key,
                     std::size_t fallback) {
  const std::string* v = a.find(key);
  if (v == nullptr) return fallback;
  if (v->find('-') != std::string::npos) {
    bad_option(key, *v, "a non-negative integer");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (v->empty() || end != v->c_str() + v->size() || errno == ERANGE) {
    bad_option(key, *v, "a non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

std::string opt_string(const Args& a, const std::string& key,
                       const std::string& fallback) {
  const std::string* v = a.find(key);
  return v == nullptr ? fallback : *v;
}

bool opt_flag(const Args& a, const std::string& key) {
  return a.find(key) != nullptr;
}

/// --format for artifact-writing subcommands (run/merge/campaign/convert):
/// "auto" follows the output path's extension (.vbt → binary), "json" and
/// "binary" force it. Distinct from report's --format, which picks the
/// rendering.
study::ArtifactFormat opt_artifact_format(const Args& a) {
  const std::string v = opt_string(a, "format", "auto");
  if (v == "auto") return study::ArtifactFormat::kAuto;
  if (v == "json") return study::ArtifactFormat::kJson;
  if (v == "binary" || v == "vbt") return study::ArtifactFormat::kBinary;
  bad_option("format", v, "auto, json, or binary");
}

// ------------------------------------------------------------- artifacts

/// Write the artifact/CSV files requested by --out/--csv and print the
/// summary. Returns 0.
int finish_study(const study::ResultTable& table, const Args& a) {
  const bool canonical = opt_flag(a, "canonical");
  if (const std::string* out = a.find("out")) {
    table.save(*out, opt_artifact_format(a),
               /*include_provenance=*/!canonical);
    std::fprintf(stderr, "wrote %s\n", out->c_str());
  }
  if (const std::string* csv = a.find("csv")) {
    io::write_file(*csv, table.to_csv());
    std::fprintf(stderr, "wrote %s\n", csv->c_str());
  }
  study::print_summary(table, stdout);
  return 0;
}

/// Shared tail of the legacy spec-builder subcommands: honour --dump-spec
/// (write the spec, don't run), otherwise run and emit artifacts/summary.
int run_built_spec(study::StudySpec spec, const Args& a) {
  if (const std::string* path = a.find("dump-spec")) {
    const std::string text = spec.to_json_text();
    if (*path == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      io::write_file(*path, text);
      std::fprintf(stderr, "wrote %s\n", path->c_str());
    }
    return 0;
  }
  if (const std::string* shard = a.find("shard")) {
    spec.shard = study::ShardSpec::parse(*shard);
  }
  return finish_study(study::run_study(spec), a);
}

// ------------------------------------------------ introspection envelope

/// Every machine-readable introspection surface — `--version --json`,
/// `list --json`, `metrics --list --json` — goes through this one helper
/// pair, so tooling can key on the shared {"tool", "version"} envelope no
/// matter which registry it asked for.
io::Json tool_envelope() {
  io::Json doc = io::Json::object();
  doc.set("tool", io::Json{std::string{"varbench"}});
  doc.set("version", io::Json{std::string{kVersion}});
  return doc;
}

int emit_introspection(const io::Json& doc) {
  std::fputs((doc.dump(2) + "\n").c_str(), stdout);
  return 0;
}

// ------------------------------------------------------- spec subcommands

int cmd_run(const Args& a) {
  require_known_flags(a, {"set", "shard", "threads", "out", "csv", "canonical",
                          "format", "metrics", "metrics-out", "trace-out"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench run <spec.json> [--set key=val ...] "
                 "[--shard i/N] [--threads N] [--out out.json] "
                 "[--csv out.csv] [--canonical] [--format auto|json|binary] "
                 "[--metrics all|<subsystem>|<name>,... "
                 "[--metrics-out metrics.json]] [--trace-out t.trace.json]\n");
    return 2;
  }
  io::Json doc = io::Json::parse(io::read_file(a.positional[0]));
  for (const std::string& assignment : a.all("set")) {
    study::apply_override(doc, assignment);
  }
  if (const std::string* threads = a.find("threads")) {
    study::apply_override(doc, "threads", *threads);
  }
  if (const std::string* shard = a.find("shard")) {
    const auto s = study::ShardSpec::parse(*shard);
    study::apply_override(doc, "shard.index", std::to_string(s.index));
    study::apply_override(doc, "shard.count", std::to_string(s.count));
  }
  const auto spec = study::StudySpec::from_json(doc);
  // Metrics are provenance, never identity: enabling them cannot change
  // the artifact bytes (docs/metrics.md), so the snapshot rides next to —
  // not inside — the study artifact, as its own canonical ResultTable.
  const std::string* selection = a.find("metrics");
  if (selection != nullptr) {
    metrics::enable_selection(metrics::global_sink(), *selection);
  }
  // Traces are the same bargain: spans describe where the time went, never
  // what the result is, so --trace-out cannot change the artifact bytes
  // either (docs/tracing.md). Campaign workers get this flag injected by
  // subprocess_launcher so every worker leaves a per-worker trace behind.
  const std::string* trace_out = a.find("trace-out");
  if (trace_out != nullptr) {
    trace::global_tracer().enable_all();
  }
  const int rc = finish_study(study::run_study(spec), a);
  if (trace_out != nullptr) {
    std::string process = std::filesystem::path{*trace_out}.filename().string();
    constexpr std::string_view kSuffix = ".trace.json";
    if (process.size() > kSuffix.size() &&
        process.compare(process.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) == 0) {
      process.resize(process.size() - kSuffix.size());
    }
    const trace::TraceFile file =
        trace::drain(trace::global_tracer(), std::move(process));
    trace::write_trace_file(*trace_out, file);
    std::fprintf(stderr, "trace: %zu span(s) -> %s\n", file.spans.size(),
                 trace_out->c_str());
  }
  if (selection != nullptr) {
    const study::ResultTable mtable = metrics::to_result_table(
        metrics::global_sink().snapshot(), "metrics:run");
    if (const std::string* mout = a.find("metrics-out")) {
      mtable.save(*mout);
      std::fprintf(stderr, "metrics: %zu metric(s) -> %s\n",
                   mtable.rows.size(), mout->c_str());
    } else {
      std::fputs(mtable.to_csv().c_str(), stderr);
    }
  }
  return rc;
}

/// Expand a merge operand: a file stands for itself; a directory stands for
/// the `*.json` and `*.vbt` files it holds (mixed freely) — preferring its
/// `artifacts/` subdirectory when present, so a campaign state dir and a
/// hand-run shard dir merge the same way. In-flight `.part` files and
/// `campaign.json` are skipped.
std::vector<std::string> expand_shard_paths(const std::string& operand) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(operand)) return {operand};
  fs::path dir{operand};
  if (fs::is_directory(dir / "artifacts")) dir /= "artifacts";
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator{dir}) {
    const fs::path& p = entry.path();
    if (!entry.is_regular_file() ||
        (p.extension() != ".json" && p.extension() != ".vbt")) {
      continue;
    }
    if (p.filename() == "campaign.json") continue;
    files.push_back(p.string());
  }
  if (files.empty()) {
    throw std::invalid_argument(
        "merge: no shard artifacts (*.json, *.vbt) in '" + dir.string() +
        "'");
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmd_merge(const Args& a) {
  require_known_flags(a, {"out", "csv", "format"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench merge <shard.json|shard.vbt | shard-dir> "
                 "... [--out merged.json] [--csv merged.csv] "
                 "[--format auto|json|binary]\n"
                 "a directory operand merges every *.json/*.vbt inside it "
                 "(a campaign state dir merges its artifacts/)\n");
    return 2;
  }
  std::vector<study::ResultTable> shards;
  for (const auto& operand : a.positional) {
    for (const auto& path : expand_shard_paths(operand)) {
      shards.push_back(study::ResultTable::load(path));
    }
  }
  const auto merged = study::merge_result_tables(std::move(shards));
  // A merged artifact has no single producing process; it is always
  // written in canonical (identity-only) form.
  if (const std::string* out = a.find("out")) {
    merged.save(*out, opt_artifact_format(a), /*include_provenance=*/false);
    std::fprintf(stderr, "wrote %s\n", out->c_str());
  }
  if (const std::string* csv = a.find("csv")) {
    io::write_file(*csv, merged.to_csv());
    std::fprintf(stderr, "wrote %s\n", csv->c_str());
  }
  study::print_summary(merged, stdout);
  return 0;
}

int cmd_campaign(const Args& a) {
  require_known_flags(a, {"shards", "workers", "dir", "resume", "max-retries",
                          "stale-ms", "task-timeout-ms", "set", "threads",
                          "plan-only", "format", "metrics", "trace"});
  const std::string dir = opt_string(a, "dir", "");
  const bool plan_only = opt_flag(a, "plan-only");
  if (a.positional.empty() || (dir.empty() && !plan_only)) {
    std::fprintf(stderr,
                 "usage: varbench campaign <spec.json> ... --dir <state-dir> "
                 "[--shards N] [--workers K] [--resume] [--max-retries R] "
                 "[--stale-ms T] [--task-timeout-ms T] [--set key=val ...] "
                 "[--threads N] [--plan-only] [--format json|binary] "
                 "[--metrics all|<subsystem>|<name>,...] [--trace]\n"
                 "each <spec.json> is one StudySpec or a JSON array of "
                 "specs; --resume finishes the gaps of an existing state "
                 "dir; --plan-only validates every spec and prints the task "
                 "plan without running\n");
    return 2;
  }
  std::vector<io::Json> raw;
  for (const std::string& path : a.positional) {
    io::Json doc = io::Json::parse(io::read_file(path));
    if (doc.is_array()) {
      for (const io::Json& spec_doc : doc.as_array()) {
        raw.push_back(spec_doc);
      }
    } else {
      raw.push_back(std::move(doc));
    }
  }
  std::vector<study::StudySpec> studies;
  for (io::Json& spec_doc : raw) {
    for (const std::string& assignment : a.all("set")) {
      study::apply_override(spec_doc, assignment);
    }
    if (const std::string* threads = a.find("threads")) {
      study::apply_override(spec_doc, "threads", *threads);
    }
    studies.push_back(study::StudySpec::from_json(spec_doc));
  }

  if (plan_only) {
    // Validate + plan without touching any state: the dry-run used by CI
    // and by users checking a campaign file before committing machines.
    // Run the same pre-run checks the workers would hit (unknown case
    // study, repetitions on an analytic figure kind, missing runner) so a
    // plan-clean campaign cannot fail them at worker time.
    for (const auto& spec : studies) {
      study::validate_study_spec(spec);
    }
    const auto tasks =
        campaign::plan_tasks(studies, opt_size(a, "shards", 1));
    for (const auto& task : tasks) {
      std::printf("%-14s %s:%s shard %s\n", task.id.c_str(),
                  std::string{study::to_string(task.spec.kind)}.c_str(),
                  task.spec.case_study.c_str(),
                  task.spec.shard.label().c_str());
    }
    std::printf("plan: %zu task(s) over %zu study(ies)\n", tasks.size(),
                studies.size());
    return 0;
  }

  // Coordinator metrics land in campaign.json's "metrics" provenance
  // block next to the per-task wall_time_ms (docs/metrics.md).
  if (const std::string* selection = a.find("metrics")) {
    metrics::enable_selection(metrics::global_sink(), *selection);
  }

  campaign::CampaignConfig cfg;
  cfg.dir = dir;
  cfg.shards = opt_size(a, "shards", 1);
  cfg.workers = opt_size(a, "workers", 1);
  cfg.max_retries = opt_size(a, "max-retries", 2);
  cfg.stale_after = std::chrono::milliseconds{opt_size(a, "stale-ms", 60'000)};
  cfg.task_timeout =
      std::chrono::milliseconds{opt_size(a, "task-timeout-ms", 0)};
  cfg.resume = opt_flag(a, "resume");
  cfg.events = stderr;
  cfg.format = opt_artifact_format(a);  // kAuto behaves as kJson
  cfg.trace = opt_flag(a, "trace");
  if (cfg.trace) {
    // The coordinator's own io spans (artifact loads during study merge)
    // ride in coordinator.trace.json next to the campaign spans; workers
    // are separate processes and trace themselves via --trace-out.
    trace::enable_selection(trace::global_tracer(), "io");
    cfg.tracer = &trace::global_tracer();
    trace::enable_selection(*cfg.tracer, "campaign");
  }

  const auto report = campaign::run_campaign(
      cfg, studies,
      campaign::subprocess_launcher(campaign::current_executable(g_argv0),
                                    cfg.trace));

  for (const auto& path : report.merged_outputs) {
    std::printf("merged: %s\n", path.c_str());
  }
  for (const auto& failure : report.failures) {
    std::fprintf(stderr, "error: %s\n", failure.c_str());
  }
  return report.ok() ? 0 : 1;
}

/// varbench convert <in> <out>: re-encode one artifact between JSON and
/// VBT1 binary. Conversion is lossless in both directions — the canonical
/// identity bytes (and provenance, unless --canonical drops it) survive a
/// JSON → binary → JSON round trip exactly (docs/artifacts.md).
int cmd_convert(const Args& a) {
  require_known_flags(a, {"format", "canonical"});
  if (a.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: varbench convert <in.json|in.vbt> <out.vbt|out.json> "
                 "[--format auto|json|binary] [--canonical]\n"
                 "the output format follows the output extension unless "
                 "--format overrides it; --canonical drops provenance "
                 "(threads/wall time) from the output\n");
    return 2;
  }
  const auto table = study::ResultTable::load(a.positional[0]);
  table.save(a.positional[1], opt_artifact_format(a),
             /*include_provenance=*/!opt_flag(a, "canonical"));
  std::fprintf(stderr, "wrote %s (%zu rows, %zu columns)\n",
               a.positional[1].c_str(), table.rows.size(),
               table.columns.size());
  return 0;
}

int cmd_report(const Args& a) {
  require_known_flags(a, {"spec", "set", "format", "compare", "threads",
                          "out"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench report <artifact.json | dir> "
                 "[--spec r.json] [--set key=val ...] "
                 "[--format text|markdown|csv|json] "
                 "[--compare other.json] [--threads N] [--out file]\n"
                 "renders every statistic derivable from a ResultTable "
                 "artifact; a directory reports each study it holds "
                 "(docs/reporting.md)\n");
    return 2;
  }
  io::Json spec_doc = io::Json::object();
  if (const std::string* path = a.find("spec")) {
    spec_doc = io::Json::parse(io::read_file(*path));
  }
  for (const std::string& assignment : a.all("set")) {
    study::apply_override(spec_doc, assignment);
  }
  if (const std::string* format = a.find("format")) {
    study::apply_override(spec_doc, "format", "\"" + *format + "\"");
  }
  const auto spec = report::ReportSpec::from_json(spec_doc);
  const auto format = report::format_from_string(spec.format);
  // Threads only schedule the bootstrap/permutation loops; the rendered
  // bytes are invariant (docs/determinism.md).
  const exec::ExecContext ctx{opt_size(a, "threads", 1)};

  const std::string& target = a.positional[0];
  std::vector<report::Report> reports;
  const bool is_dir = std::filesystem::is_directory(target);
  if (is_dir) {
    if (a.find("compare") != nullptr) {
      throw std::invalid_argument(
          "report: --compare works on single artifacts, not directories");
    }
    auto dir = report::load_artifact_dir(target);
    for (const auto& artifact : dir.studies) {
      reports.push_back(report::summarize(ctx, artifact, spec));
    }
    // Wall-time totals ride on the last study's report.
    if (dir.provenance.has_value() && !reports.empty()) {
      reports.back().provenance = std::move(dir.provenance);
    }
  } else {
    const auto artifact = report::load_artifact(target);
    if (const std::string* other = a.find("compare")) {
      reports.push_back(report::summarize_compare(
          ctx, artifact, report::load_artifact(*other), spec));
    } else {
      reports.push_back(report::summarize(ctx, artifact, spec));
    }
  }
  // A directory always renders as a multi-report document (a JSON array),
  // so consumers see one stable shape however many studies it holds.
  const std::string rendered = is_dir
                                   ? report::render_all(reports, format)
                                   : report::render(reports.front(), format);
  if (const std::string* out = a.find("out")) {
    io::write_file(*out, rendered);
    std::fprintf(stderr, "wrote %s\n", out->c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

/// varbench trace <state-dir> [--chrome out.json] [--summary]: stitch the
/// per-worker traces a `campaign --trace` run left behind into one
/// timeline. --chrome exports Chrome trace-event JSON (load it in
/// Perfetto / chrome://tracing); --summary (also the default when no
/// --chrome is asked for) renders the per-span critical-path table through
/// the report machinery (docs/tracing.md).
int cmd_trace(const Args& a) {
  require_known_flags(a, {"chrome", "summary", "format", "threads"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench trace <state-dir> [--chrome out.json] "
                 "[--summary] [--format text|markdown|csv|json]\n"
                 "stitches <state-dir>/traces/*.trace.json (written by "
                 "campaign --trace or run --trace-out) into a Chrome "
                 "trace-event timeline and a per-span summary "
                 "(docs/tracing.md)\n");
    return 2;
  }
  const trace::StitchedTrace stitched =
      trace::stitch_state_dir(a.positional[0]);
  std::fprintf(stderr, "trace: %zu span(s) across %zu process(es)\n",
               stitched.total_spans(), stitched.processes.size());
  bool emitted = false;
  if (const std::string* out = a.find("chrome")) {
    io::write_file(*out, trace::chrome_trace_json(stitched).dump(2) + "\n");
    std::fprintf(stderr, "wrote %s\n", out->c_str());
    emitted = true;
  }
  if (opt_flag(a, "summary") || !emitted) {
    // The per-span aggregate is an ordinary ResultTable, so it renders
    // through the same report pipeline as any study artifact: group by
    // span name, one group per instrumented region.
    io::Json spec_doc = io::Json::object();
    spec_doc.set("group_by", io::Json{std::string{"span"}});
    io::Json estimators = io::Json::array();
    estimators.push_back(io::Json{std::string{"mean"}});
    spec_doc.set("estimators", std::move(estimators));
    spec_doc.set("format",
                 io::Json{opt_string(a, "format", "text")});
    const auto spec = report::ReportSpec::from_json(spec_doc);
    const report::LoadedArtifact artifact{a.positional[0],
                                          trace::summary_table(stitched)};
    const exec::ExecContext ctx{opt_size(a, "threads", 1)};
    const auto rendered = report::render(report::summarize(ctx, artifact, spec),
                                         report::format_from_string(spec.format));
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

/// varbench status <state-dir> [--json] [--watch]: live campaign state
/// from heartbeats + claims + manifest alone — strictly read-only, safe to
/// run beside a live coordinator (docs/campaigns.md).
int cmd_status(const Args& a) {
  require_known_flags(a, {"json", "watch", "interval-ms"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench status <state-dir> [--json] [--watch] "
                 "[--interval-ms T]\n"
                 "reads the manifest, queue, and claim heartbeats of a "
                 "(possibly running) campaign without touching them; "
                 "--watch repolls until no task is pending\n");
    return 2;
  }
  const bool watch = opt_flag(a, "watch");
  const std::size_t interval = opt_size(a, "interval-ms", 1'000);
  for (;;) {
    const auto status = campaign::read_status(a.positional[0]);
    if (a.find("json") != nullptr) {
      io::Json doc = tool_envelope();
      doc.set("status", campaign::status_json(status));
      std::fputs((doc.dump(2) + "\n").c_str(), stdout);
    } else {
      std::fputs(campaign::render_status_text(status).c_str(), stdout);
    }
    std::fflush(stdout);
    if (!watch || status.pending == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{interval});
  }
  return 0;
}

// ----------------------------------------------------- legacy subcommands

int cmd_list(const Args& a) {
  require_known_flags(a, {"json"});
  if (a.find("json") != nullptr) {
    io::Json doc = tool_envelope();
    doc.set("kinds", study::study_kinds_json());
    return emit_introspection(doc);
  }
  std::fputs(study::list_study_kinds_text().c_str(), stdout);
  std::printf(
      "\nrun one with: varbench run spec.json (spec: {\"kind\": \"<name>\"} "
      "+ optional common fields and params overrides)\n");
  return 0;
}

/// varbench metrics --list [--json]: the metric registry — stable integer
/// ids, names, kinds, units, subsystems (docs/metrics.md) — through the
/// same introspection envelope as `list --json`.
int cmd_metrics(const Args& a) {
  require_known_flags(a, {"list", "json"});
  if (a.find("json") != nullptr) {
    io::Json doc = tool_envelope();
    doc.set("metrics", metrics::registry_json());
    return emit_introspection(doc);
  }
  std::fputs(metrics::registry_text().c_str(), stdout);
  std::printf(
      "\nenable with --metrics <sel> on run/campaign (sel: \"all\", a "
      "subsystem, or metric names, comma-separated)\n");
  return 0;
}

/// varbench bench [--gate]: the perf-trajectory rung (docs/metrics.md).
/// Runs the instrumented microbench suites, appends min-of-N rows to
/// bench/BENCH_exec.json / BENCH_campaign.json, and in gate mode fails on
/// regressions beyond the noise band. Defaults come from the same
/// BenchSpec environment parse the bench/ binaries use, so both surfaces
/// are driven uniformly.
int cmd_bench(const Args& a) {
  require_known_flags(a, {"gate", "dir", "threshold", "repeats", "scale",
                          "threads", "label", "no-append", "inject-slowdown"});
  const benchutil::BenchSpec& knobs = benchutil::BenchSpec::env();
  metrics::GateOptions opts;
  opts.bench_dir = opt_string(a, "dir", "bench");
  opts.threshold = opt_double(a, "threshold", 1.5);
  opts.repeats = opt_size(a, "repeats", knobs.reps.value_or(5));
  opts.scale = opt_double(a, "scale", knobs.scale.value_or(1.0));
  opts.threads = opt_size(a, "threads", knobs.threads);
  opts.gate = opt_flag(a, "gate");
  opts.append = !opt_flag(a, "no-append");
  opts.label = opt_string(a, "label", "local");
  opts.inject_slowdown = opt_double(a, "inject-slowdown", 1.0);
  return metrics::run_bench_gate(opts, stdout);
}

int cmd_tasks(const Args& a) {
  require_known_flags(a, {});
  std::printf("registered case studies:\n");
  for (const auto& id : casestudies::case_study_ids()) {
    const auto& c = casestudies::calibration_for(id);
    std::printf("  %-18s %-18s metric=%-9s paper n'=%zu\n", id.c_str(),
                c.paper_task.c_str(), c.metric.c_str(), c.paper_test_size);
  }
  return 0;
}

int cmd_plan(const Args& a) {
  require_known_flags(a, {"gamma", "alpha", "beta"});
  const double gamma = opt_double(a, "gamma", 0.75);
  const double alpha = opt_double(a, "alpha", 0.05);
  const double beta = opt_double(a, "beta", 0.05);
  const std::size_t n = stats::noether_sample_size(gamma, alpha, beta);
  std::printf(
      "gamma=%.2f alpha=%.2f beta=%.2f -> run each algorithm %zu times "
      "(paired)\n",
      gamma, alpha, beta, n);
  return 0;
}

int cmd_study(const Args& a) {
  require_known_flags(a, {"reps", "scale", "budget", "seed", "threads", "shard",
                          "out", "csv", "canonical", "dump-spec", "format"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench study <task> [--reps N] [--scale S] "
                 "[--budget T] [--seed S] [--threads N] "
                 "[--out f.json] [--dump-spec f.json]\n");
    return 2;
  }
  study::StudySpec spec;
  spec.kind = study::StudyKind::kVariance;
  spec.case_study = a.positional[0];
  spec.scale = opt_double(a, "scale", 0.25);
  spec.seed = opt_size(a, "seed", 42);
  spec.repetitions = opt_size(a, "reps", 20);
  spec.threads = opt_size(a, "threads", 1);
  spec.variance.hpo_budget = opt_size(a, "budget", 10);
  return run_built_spec(std::move(spec), a);
}

int cmd_compare(const Args& a) {
  require_known_flags(a, {"runs", "scale", "lr-mult", "gamma", "seed",
                          "threads", "shard", "out", "csv", "canonical",
                          "dump-spec", "format"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench compare <task> [--runs N] [--scale S] "
                 "[--lr-mult M] [--gamma G] [--seed S] [--threads N] "
                 "[--out f.json] [--dump-spec f.json]\n");
    return 2;
  }
  study::StudySpec spec;
  spec.kind = study::StudyKind::kCompare;
  spec.case_study = a.positional[0];
  spec.scale = opt_double(a, "scale", 0.25);
  spec.seed = opt_size(a, "seed", 42);
  spec.threads = opt_size(a, "threads", 1);
  spec.compare.gamma = opt_double(a, "gamma", 0.75);
  spec.compare.lr_mult = opt_double(a, "lr-mult", 0.2);
  spec.repetitions = opt_size(
      a, "runs", stats::noether_sample_size(spec.compare.gamma, 0.05, 0.2));
  if (a.find("dump-spec") == nullptr) {
    std::printf("A = defaults; B = defaults with lr x %.2f; %zu paired runs\n",
                spec.compare.lr_mult, spec.repetitions);
  }
  return run_built_spec(std::move(spec), a);
}

int cmd_hpo(const Args& a) {
  require_known_flags(a, {"algo", "budget", "scale", "seed", "threads",
                          "shard", "out", "csv", "canonical", "dump-spec",
                          "format"});
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: varbench hpo <task> [--algo NAME] [--budget T] "
                 "[--scale S] [--seed S] [--threads N] "
                 "[--out f.json] [--dump-spec f.json]\n");
    return 2;
  }
  study::StudySpec spec;
  spec.kind = study::StudyKind::kHpo;
  spec.case_study = a.positional[0];
  spec.scale = opt_double(a, "scale", 0.25);
  spec.seed = opt_size(a, "seed", 42);
  spec.threads = opt_size(a, "threads", 1);
  spec.repetitions = 1;
  spec.hpo.algo = opt_string(a, "algo", "bayes_opt");
  spec.hpo.budget = opt_size(a, "budget", 20);
  return run_built_spec(std::move(spec), a);
}

int cmd_audit(const Args& a) {
  require_known_flags(a, {"scale"});
  if (a.positional.empty()) {
    std::fprintf(stderr, "usage: varbench audit <task> [--scale S]\n");
    return 2;
  }
  const auto cs = casestudies::make_case_study(a.positional[0],
                                               opt_double(a, "scale", 0.15));
  const auto cfg = cs.pipeline->resolve_config(cs.pipeline->default_params());
  ml::ReproAuditConfig audit;
  audit.num_seeds = 2;
  audit.num_repeats = 2;
  const auto report = ml::audit_reproducibility(*cs.pool, cfg, audit);
  std::printf("deterministic: %s, resumable: %s\n",
              report.deterministic ? "yes" : "NO",
              report.resumable ? "yes" : "NO");
  for (const auto& f : report.failures) std::printf("  finding: %s\n",
                                                    f.c_str());
  std::printf("audit %s\n", report.passed() ? "PASSED" : "FAILED");
  // pascalvoc_fcn intentionally injects numerical noise and must fail.
  return report.passed() ? 0 : 1;
}

void usage() {
  std::printf(
      "varbench — variance-aware ML benchmarking (MLSys 2021 reproduction)\n"
      "spec-driven interface (docs/study_api.md):\n"
      "  run     <spec.json> [--set key=val ...] [--shard i/N] [--threads N]\n"
      "          [--out out.json|out.vbt] [--csv out.csv] [--canonical]\n"
      "          [--format auto|json|binary]\n"
      "  merge   <shard.json|shard.vbt | shard-dir> ... [--out merged.json]\n"
      "          [--csv merged.csv] [--format auto|json|binary]\n"
      "  convert <in> <out> [--format auto|json|binary] [--canonical]\n"
      "          re-encode an artifact between JSON and VBT1 binary\n"
      "          (lossless both ways, docs/artifacts.md)\n"
      "  campaign <spec.json> --dir <state-dir> [--shards N] [--workers K]\n"
      "          [--resume] [--max-retries R] [--plan-only]\n"
      "          [--format json|binary] [--trace] (docs/campaigns.md)\n"
      "  trace   <state-dir> [--chrome out.json] [--summary]\n"
      "          stitch per-worker traces into a Chrome trace-event\n"
      "          timeline + per-span summary (docs/tracing.md)\n"
      "  status  <state-dir> [--json] [--watch]\n"
      "          live worker/task state from heartbeats alone, read-only\n"
      "          (docs/campaigns.md)\n"
      "  list    [--json]  registered study kinds (incl. every paper\n"
      "          figure/table); --json emits the machine-readable registry\n"
      "  metrics --list [--json]  the metric registry: stable ids, names,\n"
      "          units, subsystems (docs/metrics.md); enable with\n"
      "          --metrics <sel> on run/campaign\n"
      "  bench   [--gate] [--dir bench] [--threshold X] [--repeats N]\n"
      "          [--scale S] [--threads N] [--label L] [--no-append]\n"
      "          run the instrumented microbenches, append the perf\n"
      "          trajectory, gate regressions (docs/metrics.md)\n"
      "  report  <artifact.json | dir> [--spec r.json] [--set key=val ...]\n"
      "          [--format text|markdown|csv|json] [--compare other.json]\n"
      "          [--threads N] [--out file] (docs/reporting.md)\n"
      "legacy spec builders (same numbers as always; add --dump-spec f.json\n"
      "to write the equivalent spec instead of running):\n"
      "  tasks                       list case studies\n"
      "  plan    [--gamma --alpha --beta]\n"
      "  study   <task> [--reps --scale --budget --seed --threads]\n"
      "  compare <task> [--runs --scale --lr-mult --gamma --seed --threads]\n"
      "  hpo     <task> [--algo --budget --scale --seed --threads]\n"
      "  audit   <task> [--scale]\n"
      "--threads N runs the Monte-Carlo loops on N threads (0 = all cores)\n"
      "and --shard i/N computes slice i of N; results are bit-identical for\n"
      "every N and any shard/merge split (docs/determinism.md).\n"
      "varbench --version prints the release version and exits.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  g_argv0 = argv[0];
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "--version") {
    if (args.find("json") != nullptr) return emit_introspection(tool_envelope());
    std::printf("varbench %.*s\n", static_cast<int>(kVersion.size()),
                kVersion.data());
    return 0;
  }
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "status") return cmd_status(args);
    if (cmd == "list") return cmd_list(args);
    if (cmd == "metrics") return cmd_metrics(args);
    if (cmd == "bench") return cmd_bench(args);
    if (cmd == "tasks") return cmd_tasks(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "study") return cmd_study(args);
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "hpo") return cmd_hpo(args);
    if (cmd == "audit") return cmd_audit(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}

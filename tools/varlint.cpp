// varlint — determinism-contract static analyzer for the varbench tree
// (docs/static_analysis.md).
//
//   varlint [path ...] [--root DIR] [--exclude SUBSTR ...] [--json]
//   varlint --list-rules [--json]
//   varlint --version
//
// Each path is a file or a directory (recursed for *.h/*.hpp/*.cpp/*.cc);
// with no paths, lints src/ tools/ bench/ tests/ under --root (default:
// the current directory). Rule scopes match on the path relative to
// --root, so run it from the repository root or pass --root explicitly.
// tests/lint_fixtures/ (intentional violations used by test_lint) and
// build trees are excluded by default.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/io/json.h"
#include "src/lint/lint.h"
#include "src/version.h"

namespace {

namespace fs = std::filesystem;
using namespace varbench;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// The path rules match on: relative to root, '/'-separated.
std::string relative_to_root(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  const fs::path chosen = (ec || rel.empty()) ? file : rel;
  return chosen.lexically_normal().generic_string();
}

int list_rules(bool as_json) {
  if (as_json) {
    io::Json doc = io::Json::object();
    doc.set("tool", "varlint");
    doc.set("version", kVersion);
    io::Json arr = io::Json::array();
    for (const lint::RuleInfo& info : lint::rule_registry()) {
      io::Json item = io::Json::object();
      item.set("name", info.name);
      item.set("summary", info.summary);
      io::Json only = io::Json::array();
      for (const std::string& p : info.only_under) only.push_back(p);
      item.set("only_under", std::move(only));
      io::Json avoid = io::Json::array();
      for (const std::string& p : info.not_under) avoid.push_back(p);
      item.set("not_under", std::move(avoid));
      item.set("headers_only", info.headers_only);
      arr.push_back(std::move(item));
    }
    doc.set("rules", std::move(arr));
    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
  }
  std::printf("varlint %.*s — registered rules:\n",
              static_cast<int>(kVersion.size()), kVersion.data());
  for (const lint::RuleInfo& info : lint::rule_registry()) {
    std::printf("  %-20s %s\n", info.name.c_str(), info.summary.c_str());
    std::string scope;
    for (const std::string& p : info.only_under) {
      scope += (scope.empty() ? "only under " : ", ") + p;
    }
    for (const std::string& p : info.not_under) {
      scope += (scope.empty() ? "exempt: " : ", ") + p;
    }
    if (info.headers_only) {
      scope += scope.empty() ? "headers only" : "; headers only";
    }
    if (!scope.empty()) std::printf("  %-20s (%s)\n", "", scope.c_str());
  }
  std::printf(
      "suppress per line with: // varlint: allow(<rule>) -- <reason>\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: varlint [path ...] [--root DIR] [--exclude SUBSTR ...] "
      "[--json]\n"
      "       varlint --list-rules [--json]\n"
      "       varlint --version\n"
      "paths default to src tools bench tests under --root (default: .);\n"
      "exit 1 on any unsuppressed finding (docs/static_analysis.md)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> operands;
  std::vector<std::string> excludes = {"tests/lint_fixtures", "build"};
  std::string root = ".";
  bool as_json = false;
  bool want_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--list-rules") {
      want_rules = true;
    } else if (arg == "--version") {
      std::printf("varlint %.*s\n", static_cast<int>(kVersion.size()),
                  kVersion.data());
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage();
      root = argv[++i];
    } else if (arg == "--exclude") {
      if (i + 1 >= argc) return usage();
      excludes.push_back(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "varlint: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      operands.push_back(arg);
    }
  }
  if (want_rules) return list_rules(as_json);
  if (operands.empty()) operands = {"src", "tools", "bench", "tests"};

  const fs::path root_path{root};
  std::vector<std::string> files;
  try {
    for (const std::string& operand : operands) {
      const fs::path p =
          fs::path{operand}.is_absolute() ? fs::path{operand}
                                          : root_path / operand;
      if (fs::is_directory(p)) {
        for (const auto& entry : fs::recursive_directory_iterator{p}) {
          if (entry.is_regular_file() && lintable_extension(entry.path())) {
            files.push_back(entry.path().string());
          }
        }
      } else if (fs::is_regular_file(p)) {
        files.push_back(p.string());
      } else {
        std::fprintf(stderr, "varlint: no such file or directory: %s\n",
                     p.string().c_str());
        return 2;
      }
    }
  } catch (const fs::filesystem_error& e) {
    std::fprintf(stderr, "varlint: %s\n", e.what());
    return 2;
  }

  // Deterministic order regardless of directory enumeration, and the
  // exclusion filter works on the rule-visible relative path.
  std::vector<std::pair<std::string, std::string>> rel_and_abs;
  for (const std::string& file : files) {
    const std::string rel = relative_to_root(file, root_path);
    const bool excluded =
        std::any_of(excludes.begin(), excludes.end(),
                    [&rel](const std::string& needle) {
                      return rel.find(needle) != std::string::npos;
                    });
    if (!excluded) rel_and_abs.emplace_back(rel, file);
  }
  std::sort(rel_and_abs.begin(), rel_and_abs.end());
  rel_and_abs.erase(std::unique(rel_and_abs.begin(), rel_and_abs.end()),
                    rel_and_abs.end());

  std::vector<lint::Finding> findings;
  for (const auto& [rel, abs] : rel_and_abs) {
    std::string source;
    try {
      source = io::read_file(abs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "varlint: %s\n", e.what());
      return 2;
    }
    std::vector<lint::Finding> file_findings = lint::lint_source(rel, source);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  const std::string rendered =
      as_json ? lint::render_json(findings, rel_and_abs.size())
              : lint::render_text(findings, rel_and_abs.size());
  std::fputs(rendered.c_str(), stdout);
  return lint::count_unsuppressed(findings) == 0 ? 0 : 1;
}

// bench_gate — the CI entry point of the perf-trajectory gate
// (docs/metrics.md). Identical engine to `varbench bench`; this thin
// binary exists so CI can run the gate without the full CLI surface and
// so a bare checkout can gate before any spec machinery is touched.
//
//   bench_gate [--gate] [--dir bench] [--threshold X] [--repeats N]
//              [--scale S] [--threads N] [--label L] [--no-append]
//              [--inject-slowdown M]
//
// Prints a markdown trajectory table (CI pipes stdout into the step
// summary), appends min-of-N rows to <dir>/BENCH_exec.json and
// <dir>/BENCH_campaign.json, and with --gate exits 1 on any regression
// beyond the threshold noise band. --inject-slowdown M multiplies the
// fresh timings before the compare — CI's self-test injects 2.0 and
// asserts the gate fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "bench/bench_spec.h"
#include "src/metrics/gate.h"
#include "src/version.h"

namespace {

int usage(int code) {
  std::fprintf(stderr,
               "usage: bench_gate [--gate] [--dir bench] [--threshold X] "
               "[--repeats N] [--scale S] [--threads N] [--label L] "
               "[--no-append] [--inject-slowdown M]\n"
               "shared VARBENCH_* knobs (bench/bench_spec.h) supply the "
               "defaults for --repeats/--scale/--threads\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using varbench::benchutil::BenchSpec;
  const BenchSpec& knobs = BenchSpec::env();
  varbench::metrics::GateOptions opts;
  opts.repeats = knobs.reps.value_or(5);
  opts.scale = knobs.scale.value_or(1.0);
  opts.threads = knobs.threads;
  opts.label = "ci";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: %s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--gate") {
      opts.gate = true;
    } else if (arg == "--no-append") {
      opts.append = false;
    } else if (arg == "--dir") {
      opts.bench_dir = value();
    } else if (arg == "--threshold") {
      opts.threshold = std::atof(value());
    } else if (arg == "--repeats") {
      opts.repeats = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--scale") {
      opts.scale = std::atof(value());
    } else if (arg == "--threads") {
      opts.threads = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--label") {
      opts.label = value();
    } else if (arg == "--inject-slowdown") {
      opts.inject_slowdown = std::atof(value());
    } else if (arg == "--version") {
      std::printf("bench_gate %.*s\n",
                  static_cast<int>(varbench::kVersion.size()),
                  varbench::kVersion.data());
      return 0;
    } else if (arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "bench_gate: unknown flag '%s'\n", arg.c_str());
      return usage(2);
    }
  }

  try {
    return varbench::metrics::run_bench_gate(opts, stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 1;
  }
}
